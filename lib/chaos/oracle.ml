type violation =
  | Stuck of string
  | Deadline_exceeded of string
  | Unanswered of { index : int; op : string }
  | Multiple_replies of { index : int; op : string; replies : int }
  | Invariant of Mds.Invariant.violation
  | Store_divergence of { server : int }
  | Missing_entry of { dir : Mds.Update.ino; name : string }
  | Phantom_entry of { dir : Mds.Update.ino; name : string }
  | Run_exception of string

let pp_violation ppf = function
  | Stuck diag -> Fmt.pf ppf "liveness: stuck short of quiescence@,%s" diag
  | Deadline_exceeded diag ->
      Fmt.pf ppf "liveness: settle deadline exceeded@,%s" diag
  | Unanswered { index; op } ->
      Fmt.pf ppf "op #%d (%s) never got a reply" index op
  | Multiple_replies { index; op; replies } ->
      Fmt.pf ppf "op #%d (%s) replied %d times" index op replies
  | Invariant v -> Fmt.pf ppf "invariant: %a" Mds.Invariant.pp_violation v
  | Store_divergence { server } ->
      Fmt.pf ppf "mds%d: volatile and durable views diverge at quiescence"
        server
  | Missing_entry { dir; name } ->
      Fmt.pf ppf "committed entry %S missing from directory %d" name dir
  | Phantom_entry { dir; name } ->
      Fmt.pf ppf "phantom entry %S in directory %d (aborted or deleted)"
        name dir
  | Run_exception e -> Fmt.pf ppf "exception escaped the run: %s" e

let is_liveness = function
  | Stuck _ | Deadline_exceeded _ -> true
  | _ -> false

(* The namespace the cluster should hold: replay committed operations in
   completion order against an empty model. Workload names are unique
   per (appearance, directory), so the only ordering that matters — a
   name's appearance before its removal — is exactly completion order
   (the generator only targets files whose creation already replied). *)
let expected_namespace records =
  let model : (Mds.Update.ino * string, unit) Hashtbl.t =
    Hashtbl.create 256
  in
  let committed =
    List.filter
      (fun r ->
        match r.Workload.outcome with
        | Some Acp.Txn.Committed -> true
        | _ -> false)
      records
  in
  let by_rank =
    List.sort
      (fun a b ->
        compare a.Workload.completion_rank b.Workload.completion_rank)
      committed
  in
  List.iter
    (fun r ->
      match r.Workload.op with
      | Mds.Op.Create { parent; name; _ } ->
          Hashtbl.replace model (parent, name) ()
      | Mds.Op.Delete { parent; name } -> Hashtbl.remove model (parent, name)
      | Mds.Op.Rename { src_dir; src_name; dst_dir; dst_name } ->
          Hashtbl.remove model (src_dir, src_name);
          Hashtbl.replace model (dst_dir, dst_name) ())
    by_rank;
  model

let durable_of cluster dir =
  let owner =
    Mds.Placement.node_of (Opc_cluster.Cluster.placement cluster) dir
  in
  Mds.Store.durable
    (Opc_cluster.Node.store (Opc_cluster.Cluster.node cluster owner))

let check cluster ~workload ~dirs ~settled =
  match settled with
  | Opc_cluster.Cluster.Stuck ->
      [ Stuck
          (Fmt.str "%a" Opc_cluster.Cluster.pp_diagnostics
             (Opc_cluster.Cluster.settle_diagnostics cluster)) ]
  | Opc_cluster.Cluster.Deadline_exceeded ->
      [ Deadline_exceeded
          (Fmt.str "%a" Opc_cluster.Cluster.pp_diagnostics
             (Opc_cluster.Cluster.settle_diagnostics cluster)) ]
  | Opc_cluster.Cluster.Quiescent ->
      let records = Workload.records workload in
      let violations = ref [] in
      let add v = violations := v :: !violations in
      (* Exactly-once reply delivery. *)
      List.iter
        (fun r ->
          let op = Fmt.str "%a" Mds.Op.pp r.Workload.op in
          (match r.Workload.outcome with
          | None -> add (Unanswered { index = r.Workload.index; op })
          | Some _ -> ());
          if r.Workload.replies > 1 then
            add
              (Multiple_replies
                 { index = r.Workload.index; op; replies = r.Workload.replies }))
        records;
      (* Global durable-image invariants (the paper's §II). *)
      List.iter
        (fun v -> add (Invariant v))
        (Opc_cluster.Cluster.check_invariants cluster);
      (* At quiescence every commit has hardened, so each serving
         node's cache must equal its stable state. *)
      Array.iteri
        (fun server n ->
          if
            Opc_cluster.Node.is_serving n
            && not (Mds.Store.in_sync (Opc_cluster.Node.store n))
          then add (Store_divergence { server }))
        (Opc_cluster.Cluster.nodes cluster);
      (* Cross-server atomicity: the durable namespace must equal the
         committed-prefix replay — a committed rename is visible at the
         destination and gone from the source, an aborted one is intact
         at the source, with no partial mixtures. *)
      let model = expected_namespace records in
      Array.iter
        (fun dir ->
          let durable = durable_of cluster dir in
          let actual =
            match Mds.State.list_dir durable dir with
            | Some entries -> List.map fst entries
            | None -> []
          in
          Hashtbl.iter
            (fun (d, name) () ->
              if d = dir && not (List.mem name actual) then
                add (Missing_entry { dir; name }))
            model;
          List.iter
            (fun name ->
              if not (Hashtbl.mem model (dir, name)) then
                add (Phantom_entry { dir; name }))
            actual)
        dirs;
      List.rev !violations
