(** Overload-survival chaos: retry storms against graceful-degradation
    oracles.

    Each seed runs the same cluster twice through an
    {!Opc_cluster.Ingress} front door driven by
    {!Workload.Open_loop}:

    - a {b reference} run at [reference_rate] (below the capacity knee,
      fault-free) — the goodput yardstick;
    - a {b storm} run at [reference_rate * storm_multiplier] — an
      open-loop retry storm past the knee, optionally with a seeded
      crash/partition/loss schedule riding along.

    Both runs face {!Oracle.check_open_loop} (every request resolved,
    exactly-once execution per idempotency key, replay-cache coherence,
    namespace atomicity, shed-leaves-no-state), and the pair faces
    {!Oracle.check_goodput_floor}: goodput past the knee must hold
    [goodput_floor] of the reference. Deterministic end to end — the
    same (seed, protocol, spec) triple always yields the same verdict,
    so failing storm schedules shrink with the standard machinery. *)

type spec = {
  servers : int;
  dir_count : int;
  reference_rate : float;  (** requests/s, below the knee *)
  storm_multiplier : float;  (** storm offered load vs reference *)
  duration_ms : int;  (** arrival window of each run *)
  max_inflight : int;  (** ingress admission bound *)
  queue_capacity : int;  (** ingress queue bound (0 = shed at once) *)
  goodput_floor : float;  (** storm goodput >= floor * reference *)
  settle_deadline_ms : int;
  window_ms : int;  (** fault-schedule window (storm run) *)
  with_faults : bool;  (** inject a generated schedule into the storm *)
}

val default_spec : spec

val policy : Workload.Open_loop.policy
(** The retry policy overload runs use (500 ms patience, 60 ms backoff
    doubling with 20 % jitter, 4 attempts). *)

type run = {
  stats : Workload.Open_loop.stats;
  ingress : Opc_cluster.Ingress.stats;
  p50 : Simkit.Time.span;  (** committed-request client latency *)
  p95 : Simkit.Time.span;
  p99 : Simkit.Time.span;
  violations : Oracle.violation list;
}

type outcome = {
  seed : int;
  protocol : Acp.Protocol.kind;
  schedule : Schedule.t option;  (** faults injected into the storm run *)
  reference : run;
  storm : run;
  violations : Oracle.violation list;
      (** both runs' violations plus the goodput-floor verdict *)
}

val passed : outcome -> bool

val execute :
  ?schedule:Schedule.t -> spec -> protocol:Acp.Protocol.kind -> seed:int ->
  outcome
(** Run the reference/storm pair. [schedule] overrides the generated
    storm-run schedule (shrinking replays). *)

val pp_outcome : Format.formatter -> outcome -> unit

type campaign = { spec : spec; outcomes : outcome list }

val campaign :
  ?protocols:Acp.Protocol.kind list ->
  ?first_seed:int ->
  seeds:int ->
  spec ->
  campaign
(** [seeds] pairs per protocol (default: all five). *)

val failures : campaign -> outcome list

val table : campaign -> Metrics.Table.t
(** Per-protocol pass/fail with mean reference/storm goodput, total
    shed count and total given-up requests. *)

val shrink : ?max_attempts:int -> spec -> outcome -> Shrink.result option
(** Minimize a failing outcome's storm schedule ([None] when the run
    had no fault schedule to shrink). *)

val repro_command : spec -> protocol:Acp.Protocol.kind -> seed:int -> string
(** The verbatim shell command that reproduces this overload pair
    through [bin/chaos] (assumes the spec's non-CLI fields are the
    defaults). *)
