(** Seeded fault-schedule generation.

    A schedule is a pure value: a window length and a list of fault
    events with integer-millisecond times. Everything is plain integers
    so schedules print as pasteable OCaml literals ({!pp_ocaml}), shrink
    by structural edits, and replay bit-identically from the value alone
    — the generator is only one way to obtain one. *)

type event =
  | Crash of { server : int; at_ms : int }
  | Restart of { server : int; at_ms : int }
  | Partition_pair of { a : int; b : int; at_ms : int }
  | Partition_group of { left : int list; at_ms : int }
      (** [left] against everyone else *)
  | Heal_pair of { a : int; b : int; at_ms : int }
  | Heal_all of { at_ms : int }
  | Loss_burst of { pct : int; at_ms : int; until_ms : int }
      (** drop [pct]% of messages between the two times *)
  | Duplicate_burst of { pct : int; at_ms : int; until_ms : int }
  | Disk_degrade of { factor_x10 : int; at_ms : int; until_ms : int }
      (** scale log-device service time by [factor_x10 / 10] *)
  | San_outage of { at_ms : int; until_ms : int }
      (** fencing controller unreachable between the two times. Never
          drawn by {!generate} (keeping historical seeded schedules
          bit-identical); written by hand for the SAN-availability
          differential tests *)

type t = { window_ms : int; events : event list }

val time_of : event -> int
(** The event's start time. *)

val length : t -> int

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val pp_ocaml : Format.formatter -> t -> unit
(** The schedule as an OCaml literal — the body of a frozen-repro test. *)

val validate : servers:int -> t -> (unit, string) result
(** Well-formedness against a cluster size: server indices in range,
    times inside the window, bursts ordered, partition groups proper
    subsets. Generated schedules always validate; hand-written and
    shrunk ones are checked before execution. *)

val generate : rng:Simkit.Rng.t -> servers:int -> window_ms:int -> t
(** Draw a random schedule (2–8 events, weighted towards crashes and
    partitions), sorted by start time. Equal RNG states yield equal
    schedules. @raise Invalid_argument on fewer than 2 servers or a
    window under 10 ms. *)

val to_faults :
  origin:Simkit.Time.t -> servers:int -> t -> Opc_cluster.Fault.event list
(** Lower to absolute-time cluster fault events, offset from [origin]
    (normally the simulation epoch). *)

val crash_times : origin:Simkit.Time.t -> t -> (int * Simkit.Time.t) list
(** The schedule's [Crash] events as [(server, absolute time)] pairs,
    offset from [origin] exactly like {!to_faults} — the expected window
    starts for {!Obs.Mttr.check_crash_times}. *)
