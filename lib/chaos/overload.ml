type spec = {
  servers : int;
  dir_count : int;
  reference_rate : float;
  storm_multiplier : float;
  duration_ms : int;
  max_inflight : int;
  queue_capacity : int;
  goodput_floor : float;
  settle_deadline_ms : int;
  window_ms : int;
  with_faults : bool;
}

let default_spec =
  {
    servers = 4;
    dir_count = 4;
    reference_rate = 100.0;
    storm_multiplier = 6.0;
    duration_ms = 600;
    max_inflight = 24;
    queue_capacity = 64;
    goodput_floor = 0.25;
    settle_deadline_ms = 120_000;
    window_ms = 600;
    with_faults = true;
  }

(* Same cluster shape as {!Runner.config_of}: a short transaction
   timeout so overload manifests inside the run, fast detection, auto
   restart. *)
let config_of spec ~protocol ~seed =
  {
    Opc_cluster.Config.default with
    servers = spec.servers;
    protocol;
    placement = Mds.Placement.Spread;
    txn_timeout = Simkit.Time.span_ms 300;
    heartbeat_interval = Simkit.Time.span_ms 20;
    detector_timeout = Simkit.Time.span_ms 100;
    restart_delay = Simkit.Time.span_ms 50;
    auto_restart = true;
    seed;
  }

let policy =
  {
    Workload.Open_loop.attempt_timeout = Simkit.Time.span_ms 500;
    backoff = Simkit.Time.span_ms 60;
    backoff_multiplier = 2.0;
    jitter = 0.2;
    max_attempts = 4;
  }

(* Independent of both the schedule stream (seed) and the closed-loop
   chaos stream (seed + 1_000_003): editing any of those must not
   perturb the open-loop arrival draws. *)
let workload_rng seed = Simkit.Rng.create ~seed:(seed + 2_000_003)

type run = {
  stats : Workload.Open_loop.stats;
  ingress : Opc_cluster.Ingress.stats;
  p50 : Simkit.Time.span;
  p95 : Simkit.Time.span;
  p99 : Simkit.Time.span;
  violations : Oracle.violation list;
}

type outcome = {
  seed : int;
  protocol : Acp.Protocol.kind;
  schedule : Schedule.t option;  (* injected into the storm run *)
  reference : run;
  storm : run;
  violations : Oracle.violation list;  (* both runs + goodput floor *)
}

let passed o = o.violations = []

let run_one spec ~protocol ~seed ~rate ~schedule =
  let config = config_of spec ~protocol ~seed in
  let cluster = Opc_cluster.Cluster.create config in
  let root = Opc_cluster.Cluster.root cluster in
  let dirs =
    Array.init spec.dir_count (fun i ->
        Opc_cluster.Cluster.add_directory cluster ~parent:root
          ~name:(Printf.sprintf "d%d" i)
          ~server:(i mod spec.servers) ())
  in
  let ingress =
    Opc_cluster.Ingress.create ~max_inflight:spec.max_inflight
      ~queue_capacity:spec.queue_capacity cluster
  in
  let ol_spec =
    {
      Workload.Open_loop.arrival = Workload.Open_loop.Poisson;
      rate_per_s = rate;
      duration = Simkit.Time.span_ms spec.duration_ms;
      dirs;
      zipf_s = 1.1;  (* hot-directory skew *)
      policy;
    }
  in
  let ol =
    Workload.Open_loop.run cluster ingress ol_spec ~rng:(workload_rng seed)
  in
  let violations =
    try
      (match schedule with
      | None -> ()
      | Some s ->
          let origin = Opc_cluster.Cluster.now cluster in
          Opc_cluster.Fault.inject cluster
            (Schedule.to_faults ~origin ~servers:spec.servers s);
          let baseline = config.Opc_cluster.Config.network in
          ignore
            (Simkit.Engine.schedule_at
               (Opc_cluster.Cluster.engine cluster)
               ~label:(Simkit.Label.v Chaos "chaos.overload.cleanup")
               ~at:
                 (Simkit.Time.add origin
                    (Simkit.Time.span_ms (spec.window_ms + 1)))
               (fun () ->
                 Opc_cluster.Cluster.heal cluster;
                 Opc_cluster.Cluster.set_drop_probability cluster
                   baseline.Netsim.Network.drop_probability;
                 Opc_cluster.Cluster.set_duplicate_probability cluster
                   baseline.Netsim.Network.duplicate_probability;
                 Opc_cluster.Cluster.set_disk_slowdown cluster 1.0)));
      let settled =
        Workload.Open_loop.settle
          ~deadline:(Simkit.Time.span_ms spec.settle_deadline_ms)
          ol
      in
      Oracle.check_open_loop cluster ~ingress ~open_loop:ol ~dirs ~settled
    with exn -> [ Oracle.Run_exception (Printexc.to_string exn) ]
  in
  let lat = Workload.Open_loop.latency ol in
  let quantiles = Metrics.Histogram.quantiles lat [ 0.50; 0.95; 0.99 ] in
  let p50, p95, p99 =
    match quantiles with
    | [ a; b; c ] -> (a, b, c)
    | _ -> (Simkit.Time.zero_span, Simkit.Time.zero_span, Simkit.Time.zero_span)
  in
  {
    stats = Workload.Open_loop.stats ol;
    ingress = Opc_cluster.Ingress.stats ingress;
    p50;
    p95;
    p99;
    violations;
  }

let generate_schedule spec ~seed =
  Schedule.generate
    ~rng:(Simkit.Rng.create ~seed)
    ~servers:spec.servers ~window_ms:spec.window_ms

let execute ?schedule spec ~protocol ~seed =
  let schedule =
    match schedule with
    | Some s -> Some s
    | None ->
        if spec.with_faults then Some (generate_schedule spec ~seed) else None
  in
  (match schedule with
  | Some s -> (
      match Schedule.validate ~servers:spec.servers s with
      | Ok () -> ()
      | Error e -> invalid_arg ("Overload.execute: bad schedule: " ^ e))
  | None -> ());
  (* Reference: fault-free, below the knee — the goodput yardstick. *)
  let reference =
    run_one spec ~protocol ~seed ~rate:spec.reference_rate ~schedule:None
  in
  (* Storm: offered load far past the knee, faults riding along. *)
  let storm =
    run_one spec ~protocol ~seed
      ~rate:(spec.reference_rate *. spec.storm_multiplier)
      ~schedule
  in
  let floor_violations =
    Oracle.check_goodput_floor ~reference:reference.stats ~storm:storm.stats
      ~floor:spec.goodput_floor
  in
  {
    seed;
    protocol;
    schedule;
    reference;
    storm;
    violations = reference.violations @ storm.violations @ floor_violations;
  }

let pp_outcome ppf o =
  if passed o then
    Fmt.pf ppf
      "%a seed %d: pass (ref %.0f/s good, storm %.0f/s good, %d shed, %.2fx \
       retries)"
      Acp.Protocol.pp o.protocol o.seed
      o.reference.stats.Workload.Open_loop.goodput_per_s
      o.storm.stats.Workload.Open_loop.goodput_per_s
      o.storm.ingress.Opc_cluster.Ingress.shed
      o.storm.stats.Workload.Open_loop.retry_amplification
  else
    Fmt.pf ppf "@[<v>%a seed %d: FAIL@,%a%a@]" Acp.Protocol.pp o.protocol
      o.seed
      Fmt.(list ~sep:cut Oracle.pp_violation)
      o.violations
      Fmt.(
        option (fun ppf s -> pf ppf "@,schedule: %a" Schedule.pp s))
      o.schedule

(* ------------------------------------------------------------------ *)
(* Campaigns and shrinking                                             *)
(* ------------------------------------------------------------------ *)

type campaign = { spec : spec; outcomes : outcome list }

let failures c = List.filter (fun o -> not (passed o)) c.outcomes

let campaign ?(protocols = Acp.Protocol.all) ?(first_seed = 0) ~seeds spec =
  let outcomes =
    List.concat_map
      (fun protocol ->
        List.init seeds (fun i -> execute spec ~protocol ~seed:(first_seed + i)))
      protocols
  in
  { spec; outcomes }

let table c =
  let t =
    Metrics.Table.create
      ~columns:
        [
          "protocol"; "runs"; "pass"; "fail"; "ref good/s"; "storm good/s";
          "shed"; "gave up";
        ]
  in
  let protocols =
    List.filter
      (fun p -> List.exists (fun o -> o.protocol = p) c.outcomes)
      Acp.Protocol.all
  in
  List.iter
    (fun p ->
      let runs = List.filter (fun o -> o.protocol = p) c.outcomes in
      let n = List.length runs in
      let pass = List.length (List.filter passed runs) in
      let favg f =
        if n = 0 then 0.0
        else List.fold_left (fun acc o -> acc +. f o) 0.0 runs /. float_of_int n
      in
      let sum f = List.fold_left (fun acc o -> acc + f o) 0 runs in
      Metrics.Table.add_rowf t "%s|%d|%d|%d|%.1f|%.1f|%d|%d"
        (Acp.Protocol.name p) n pass (n - pass)
        (favg (fun o -> o.reference.stats.Workload.Open_loop.goodput_per_s))
        (favg (fun o -> o.storm.stats.Workload.Open_loop.goodput_per_s))
        (sum (fun o -> o.storm.ingress.Opc_cluster.Ingress.shed))
        (sum (fun o -> o.storm.stats.Workload.Open_loop.gave_up)))
    protocols;
  t

let still_fails spec ~protocol ~seed schedule =
  not (passed (execute ~schedule spec ~protocol ~seed))

let shrink ?max_attempts spec outcome =
  match outcome.schedule with
  | None -> None
  | Some schedule ->
      Some
        (Shrink.minimize ?max_attempts
           ~still_fails:
             (still_fails spec ~protocol:outcome.protocol ~seed:outcome.seed)
           schedule)

let repro_command spec ~protocol ~seed =
  Printf.sprintf
    "dune exec bin/chaos.exe -- --overload -p %s --seeds 1 --first-seed %d \
     --servers %d --duration %d"
    (Acp.Protocol.name protocol)
    seed spec.servers spec.window_ms
