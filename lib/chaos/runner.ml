type spec = {
  servers : int;
  dir_count : int;
  clients : int;
  ops_per_client : int;
  window_ms : int;
  settle_deadline_ms : int;
  record_trace : bool;
  record_journal : bool;
}

let default_spec =
  {
    servers = 4;
    dir_count = 4;
    clients = 6;
    ops_per_client = 15;
    window_ms = 600;
    settle_deadline_ms = 120_000;
    record_trace = false;
    record_journal = false;
  }

(* Read-inclusive variant of the paper's write-dominated profile, so
   chaos runs also exercise the shared-lock lookup path. *)
let chaos_mix =
  Workload.
    { create_weight = 55; delete_weight = 20; rename_weight = 15;
      lookup_weight = 10 }

type tag_stats = {
  tag : string;
  sent : int;
  delivered : int;
  dup_delivered : int;
  dropped : int;
  rejected : int;
  in_flight : int;
}

type outcome = {
  seed : int;
  protocol : Acp.Protocol.kind;
  schedule : Schedule.t;
  origin : Simkit.Time.t;
  violations : Oracle.violation list;
  committed : int;
  aborted : int;
  trace : Simkit.Trace.entry list;
  journal : Obs.Journal.entry list;
  edge_hits : int array;
      (* per-Edges.id traversal counters, [||] when coverage was off *)
  fault_phases : (int * string * string) list;
      (* (schedule index, fault, protocol phase it landed in) *)
  meter : tag_stats list;  (* per-wire-tag conservation ledger *)
}

let passed o = o.violations = []

let config_of spec ~protocol ~seed =
  {
    Opc_cluster.Config.default with
    servers = spec.servers;
    protocol;
    placement = Mds.Placement.Spread;
    txn_timeout = Simkit.Time.span_ms 300;
    heartbeat_interval = Simkit.Time.span_ms 20;
    detector_timeout = Simkit.Time.span_ms 100;
    restart_delay = Simkit.Time.span_ms 50;
    auto_restart = true;
    seed;
    record_trace = spec.record_trace;
    record_journal = spec.record_journal;
    (* Coverage is passive (no RNG draws, no engine events), so turning
       it on for every chaos run changes nothing about the runs while
       arming the conservation oracle and the fault-phase matrix. *)
    record_coverage = true;
  }

(* Workload draws must not depend on how many draws schedule generation
   consumed, or replaying an edited schedule would perturb the workload
   and break bit-identical replay. Hence an independently derived
   stream, not a split of the schedule RNG. *)
let workload_rng seed = Simkit.Rng.create ~seed:(seed + 1_000_003)

let generate_schedule spec ~seed =
  Schedule.generate
    ~rng:(Simkit.Rng.create ~seed)
    ~servers:spec.servers ~window_ms:spec.window_ms

let meter_stats cluster =
  let m = Opc_cluster.Cluster.meter cluster in
  if not (Netsim.Network.Meter.is_recording m) then []
  else
    List.init (Netsim.Network.Meter.tags m) (fun tag ->
        {
          tag =
            (if tag = Acp.Codec.tag_count then "HEARTBEAT"
             else Acp.Codec.tag_name tag);
          sent = Netsim.Network.Meter.sent m tag;
          delivered = Netsim.Network.Meter.delivered m tag;
          dup_delivered = Netsim.Network.Meter.dup_delivered m tag;
          dropped = Netsim.Network.Meter.dropped m tag;
          rejected = Netsim.Network.Meter.rejected m tag;
          in_flight = Netsim.Network.Meter.in_flight m tag;
        })

(* Common run body, parameterized by the cluster config so the autopsy
   path can replay the same (spec, protocol, seed, schedule) with every
   collector enabled. Returns the cluster too — observability callers
   read the tracer/journal/recorder/profiler off it after the run. *)
let run ?schedule spec ~(config : Opc_cluster.Config.t) ~seed =
  let protocol = config.Opc_cluster.Config.protocol in
  let schedule =
    match schedule with Some s -> s | None -> generate_schedule spec ~seed
  in
  (match Schedule.validate ~servers:spec.servers schedule with
  | Ok () -> ()
  | Error e -> invalid_arg ("Runner.execute: bad schedule: " ^ e));
  let cluster = Opc_cluster.Cluster.create config in
  let root = Opc_cluster.Cluster.root cluster in
  let dirs =
    Array.init spec.dir_count (fun i ->
        Opc_cluster.Cluster.add_directory cluster ~parent:root
          ~name:(Printf.sprintf "d%d" i)
          ~server:(i mod spec.servers) ())
  in
  let workload =
    Workload.closed_loop cluster ~dirs ~clients:spec.clients
      ~ops_per_client:spec.ops_per_client ~mix:chaos_mix
      ~rng:(workload_rng seed) ()
  in
  let origin = Opc_cluster.Cluster.now cluster in
  (* Fault-phase attribution: at the instant a fault fires, the
     cluster's most recent coverage edge names the protocol phase it
     landed in ("idle" before any transition). The hook rides the
     existing on_fire slot, so it cannot perturb event order. *)
  let fault_phases = ref [] in
  let cover = Opc_cluster.Cluster.coverage cluster in
  let observe ~index e =
    let phase =
      match Obs.Coverage.last_hit cover with
      | -1 -> "idle"
      | id -> (Acp.Edges.get id).Acp.Edges.dst
    in
    fault_phases :=
      (index, Fmt.str "@[<h>%a@]" Opc_cluster.Fault.pp_event e, phase)
      :: !fault_phases
  in
  let violations =
    try
      Opc_cluster.Fault.inject ~observe cluster
        (Schedule.to_faults ~origin ~servers:spec.servers schedule);
      (* Once the window closes, restore a fault-free environment so a
         failure to quiesce afterwards is a genuine liveness bug, not a
         schedule that never stopped hurting. *)
      let baseline = config.Opc_cluster.Config.network in
      ignore
        (Simkit.Engine.schedule_at
           (Opc_cluster.Cluster.engine cluster)
           ~label:(Simkit.Label.v Chaos "chaos.cleanup")
           ~at:(Simkit.Time.add origin
                  (Simkit.Time.span_ms (spec.window_ms + 1)))
           (fun () ->
             Opc_cluster.Cluster.heal cluster;
             Opc_cluster.Cluster.set_drop_probability cluster
               baseline.Netsim.Network.drop_probability;
             Opc_cluster.Cluster.set_duplicate_probability cluster
               baseline.Netsim.Network.duplicate_probability;
             Opc_cluster.Cluster.set_disk_slowdown cluster 1.0;
             Opc_cluster.Cluster.set_fencing_available cluster true));
      Opc_cluster.Cluster.run_for cluster
        (Simkit.Time.span_ms (spec.window_ms + 200));
      let settled =
        Opc_cluster.Cluster.settle
          ~deadline:(Simkit.Time.span_ms spec.settle_deadline_ms)
          cluster
      in
      Oracle.check cluster ~workload ~dirs ~settled
    with exn -> [ Oracle.Run_exception (Printexc.to_string exn) ]
  in
  let committed, aborted = Opc_cluster.Cluster.txn_counts cluster in
  let outcome =
    {
      seed;
      protocol;
      schedule;
      origin;
      violations;
      committed;
      aborted;
      trace =
        (if spec.record_trace then
           Simkit.Trace.entries (Opc_cluster.Cluster.trace cluster)
         else []);
      journal =
        (if Obs.Journal.is_recording (Opc_cluster.Cluster.journal cluster)
         then Obs.Journal.entries (Opc_cluster.Cluster.journal cluster)
         else []);
      edge_hits = Obs.Coverage.counts cover;
      fault_phases = List.rev !fault_phases;
      meter = meter_stats cluster;
    }
  in
  (outcome, cluster)

let execute ?schedule spec ~protocol ~seed =
  fst (run ?schedule spec ~config:(config_of spec ~protocol ~seed) ~seed)

let execute_config ?schedule spec ~config ~seed =
  fst (run ?schedule spec ~config ~seed)

let pp_outcome ppf o =
  if passed o then
    Fmt.pf ppf "%a seed %d: pass (%d committed, %d aborted)"
      Acp.Protocol.pp o.protocol o.seed o.committed o.aborted
  else
    Fmt.pf ppf "@[<v>%a seed %d: FAIL@,%a@,schedule: %a@]" Acp.Protocol.pp
      o.protocol o.seed
      Fmt.(list ~sep:cut Oracle.pp_violation)
      o.violations Schedule.pp o.schedule

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)
(* ------------------------------------------------------------------ *)

type campaign = { spec : spec; outcomes : outcome list }

let failures c = List.filter (fun o -> not (passed o)) c.outcomes

let campaign ?(protocols = Acp.Protocol.all) ?(first_seed = 0) ~seeds spec =
  let outcomes =
    List.concat_map
      (fun protocol ->
        List.init seeds (fun i ->
            execute spec ~protocol ~seed:(first_seed + i)))
      protocols
  in
  { spec; outcomes }

let table c =
  let t =
    Metrics.Table.create
      ~columns:
        [ "protocol"; "runs"; "pass"; "fail"; "committed"; "aborted" ]
  in
  let protocols =
    List.filter
      (fun p -> List.exists (fun o -> o.protocol = p) c.outcomes)
      Acp.Protocol.all
  in
  List.iter
    (fun p ->
      let runs = List.filter (fun o -> o.protocol = p) c.outcomes in
      let pass = List.length (List.filter passed runs) in
      let committed =
        List.fold_left (fun acc o -> acc + o.committed) 0 runs
      in
      let aborted = List.fold_left (fun acc o -> acc + o.aborted) 0 runs in
      Metrics.Table.add_rowf t "%s|%d|%d|%d|%d|%d" (Acp.Protocol.name p)
        (List.length runs) pass
        (List.length runs - pass)
        committed aborted)
    protocols;
  t

(* ------------------------------------------------------------------ *)
(* Shrinking a failure                                                 *)
(* ------------------------------------------------------------------ *)

let still_fails spec ~protocol ~seed schedule =
  not (passed (execute ~schedule spec ~protocol ~seed))

let shrink ?max_attempts spec outcome =
  Shrink.minimize ?max_attempts
    ~still_fails:
      (still_fails spec ~protocol:outcome.protocol ~seed:outcome.seed)
    outcome.schedule

let repro_snippet spec ~protocol ~seed schedule =
  Fmt.str
    "@[<v>(* chaos repro: %s, seed %d *)@,\
     let schedule =@,\
    \  %a@,\
     @,\
     let () =@,\
    \  let spec =@,\
    \    { Chaos.Runner.default_spec with@,\
    \      servers = %d; dir_count = %d; clients = %d;@,\
    \      ops_per_client = %d; window_ms = %d } in@,\
    \  let o =@,\
    \    Chaos.Runner.execute ~schedule spec@,\
    \      ~protocol:Acp.Protocol.%s ~seed:%d in@,\
    \  List.iter@,\
    \    (Fmt.pr \"%%a@@.\" Chaos.Oracle.pp_violation)@,\
    \    o.Chaos.Runner.violations@]"
    (Acp.Protocol.name protocol) seed Schedule.pp_ocaml schedule spec.servers
    spec.dir_count spec.clients spec.ops_per_client spec.window_ms
    (match protocol with
    | Acp.Protocol.Prn -> "Prn"
    | Acp.Protocol.Prc -> "Prc"
    | Acp.Protocol.Ep -> "Ep"
    | Acp.Protocol.Opc -> "Opc"
    | Acp.Protocol.Lp1 -> "Lp1")
    seed

(* ------------------------------------------------------------------ *)
(* Observed replay and incident autopsy                                *)
(* ------------------------------------------------------------------ *)

let repro_command spec ~protocol ~seed =
  Printf.sprintf
    "dune exec bin/chaos.exe -- -p %s --seeds 1 --first-seed %d --servers %d \
     --clients %d --ops %d --duration %d%s --shrink"
    (Acp.Protocol.name protocol)
    seed spec.servers spec.clients spec.ops_per_client spec.window_ms
    (if spec.settle_deadline_ms = default_spec.settle_deadline_ms then ""
     else Printf.sprintf " --settle-deadline %d" spec.settle_deadline_ms)

(* A 1PC or L1PC cluster also hosts the PrN fallback engine, so a
   run's bitmap meaningfully covers both maps; reporting the other
   three protocols' edges as "never hit" would be noise, not a gap. *)
let hosted_protocols = function
  | Acp.Protocol.Opc -> [ Acp.Protocol.Opc; Acp.Protocol.Prn ]
  | Acp.Protocol.Lp1 -> [ Acp.Protocol.Lp1; Acp.Protocol.Prn ]
  | p -> [ p ]

let coverage_summaries ~protocol edge_hits =
  if Array.length edge_hits = 0 then []
  else
    List.map
      (fun p ->
        let edges = Acp.Edges.of_protocol p in
        let never =
          List.filter (fun (e : Acp.Edges.edge) -> edge_hits.(e.id) = 0) edges
        in
        {
          Obs.Autopsy.cov_protocol = Acp.Protocol.name p;
          declared = List.length edges;
          edges_hit = List.length edges - List.length never;
          never_hit = List.map Acp.Edges.name never;
        })
      (hosted_protocols protocol)

let observed_config spec ~protocol ~seed =
  {
    (config_of spec ~protocol ~seed) with
    record_spans = true;
    record_journal = true;
    sample_period = Some (Simkit.Time.span_ms 5);
    record_prof = true;
    recorder_size = Some 4096;
  }

let execute_observed ?schedule spec ~protocol ~seed =
  let outcome, cluster =
    run ?schedule spec ~config:(observed_config spec ~protocol ~seed) ~seed
  in
  let journal = Opc_cluster.Cluster.journal cluster in
  let verdict =
    if passed outcome then "pass"
    else
      Fmt.str "%a"
        Fmt.(list ~sep:(any "; ") Oracle.pp_violation)
        outcome.violations
  in
  let source =
    {
      Obs.Autopsy.verdict;
      protocol = Acp.Protocol.name protocol;
      seed;
      repro = repro_command spec ~protocol ~seed;
      schedule = Fmt.str "%a" Schedule.pp_ocaml outcome.schedule;
      diagnostics =
        Fmt.str "%a" Opc_cluster.Cluster.pp_diagnostics
          (Opc_cluster.Cluster.settle_diagnostics cluster);
      tracer = Opc_cluster.Cluster.obs cluster;
      journal;
      recorder = Opc_cluster.Cluster.recorder cluster;
      gauge_columns =
        Obs.Timeseries.columns (Opc_cluster.Cluster.timeseries cluster);
      windows = Obs.Mttr.windows (Obs.Journal.entries journal);
      profile =
        (* [report] raises on a cluster torn down by a Run_exception
           before profiling started; the bundle is still useful. *)
        (try Some (Obs.Prof.report (Opc_cluster.Cluster.prof cluster))
         with Invalid_argument _ -> None);
      coverage = coverage_summaries ~protocol outcome.edge_hits;
    }
  in
  (outcome, source)

let autopsy ?max_attempts ~dir spec (o : outcome) =
  let schedule =
    if passed o then o.schedule
    else (shrink ?max_attempts spec o).Shrink.schedule
  in
  let _, source =
    execute_observed ~schedule spec ~protocol:o.protocol ~seed:o.seed
  in
  let bundle_dir =
    Filename.concat dir
      (Printf.sprintf "INCIDENT_%s_%d" (Acp.Protocol.name o.protocol) o.seed)
  in
  ignore (Obs.Autopsy.write ~dir:bundle_dir source);
  (* A bundle nobody can parse is worse than none: prove the artifacts
     are well-formed before handing the directory to a human. *)
  (match Obs.Autopsy.validate bundle_dir with
  | Ok () -> ()
  | Error e -> failwith ("Runner.autopsy: bundle failed validation: " ^ e));
  bundle_dir
