(** Automatic counterexample shrinking.

    Given a failing schedule and a deterministic [still_fails] replay
    predicate, greedily reduce the schedule until it is locally minimal:
    no single event can be removed, and no single event delayed, with
    the failure persisting. Deterministic replay makes this sound — the
    same (seed, schedule) pair always reproduces the same verdict, so
    every accepted candidate is a genuine smaller counterexample, not a
    different random failure. *)

type result = {
  schedule : Schedule.t;  (** locally minimal, still failing *)
  attempts : int;  (** replays spent *)
  removed : int;  (** events deleted from the original *)
  delayed : int;  (** events moved later / bursts shortened *)
}

val minimize :
  ?max_attempts:int ->
  still_fails:(Schedule.t -> bool) ->
  Schedule.t ->
  result
(** [minimize ~still_fails s] assumes [still_fails s] holds and returns
    a schedule for which it still holds. Runs single-event removal
    passes to a fixpoint, then single-event delay passes (point events
    move halfway to the window end, bursts halve their length), cycling
    until nothing changes or [max_attempts] (default 400) replays are
    spent. *)
