(** Chaos campaign runner.

    One chaos run = one freshly built cluster + a seeded random
    namespace workload + a seeded fault schedule, driven to quiescence
    and judged by {!Oracle.check}. Everything is derived
    deterministically from [(spec, protocol, seed)] — and the schedule
    value itself — so any run replays bit-identically, which is what
    makes {!shrink} sound and failures debuggable. *)

type spec = {
  servers : int;
  dir_count : int;  (** workload directories, spread over the servers *)
  clients : int;
  ops_per_client : int;
  window_ms : int;  (** fault-injection window *)
  settle_deadline_ms : int;
  record_trace : bool;  (** keep the full event trace in the outcome *)
  record_journal : bool;
      (** keep the lifecycle journal in the outcome (crashes, fencing,
          scans, injected faults with schedule indices) for MTTR
          decomposition via {!Obs.Mttr.windows} *)
}

val default_spec : spec
(** 4 servers, 4 directories, 6 clients x 15 operations, a 600 ms fault
    window, a 120 s settle deadline, no trace, no journal. *)

val chaos_mix : Workload.mix
(** 55/20/15 create/delete/rename plus 10% shared-lock lookups. *)

(** One wire tag's row of the message-conservation ledger. The law
    [sent = delivered + dup_delivered + dropped + in_flight] is checked
    by the oracle at tolerance zero; [rejected] counts send-time
    refusals that never entered the fabric and sits outside the law. *)
type tag_stats = {
  tag : string;  (** {!Acp.Codec.tag_name}, or ["HEARTBEAT"] *)
  sent : int;
  delivered : int;
  dup_delivered : int;
  dropped : int;
  rejected : int;
  in_flight : int;
}

type outcome = {
  seed : int;
  protocol : Acp.Protocol.kind;
  schedule : Schedule.t;
  origin : Simkit.Time.t;
      (** instant the schedule was armed — pass to
          {!Schedule.crash_times} to get expected window starts *)
  violations : Oracle.violation list;  (** [] = pass *)
  committed : int;
  aborted : int;
  trace : Simkit.Trace.entry list;  (** [] unless [record_trace] *)
  journal : Obs.Journal.entry list;  (** [] unless [record_journal] *)
  edge_hits : int array;
      (** traversal counters indexed by {!Acp.Edges} id — chaos runs
          always record coverage, so this is never empty *)
  fault_phases : (int * string * string) list;
      (** per fired fault: schedule index, description, and the
          protocol phase it landed in (the destination state of the
          newest coverage edge; ["idle"] before any transition) *)
  meter : tag_stats list;
      (** per-wire-tag conservation ledger at quiescence *)
}

val passed : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

val generate_schedule : spec -> seed:int -> Schedule.t
(** The schedule {!execute} derives from [seed] when none is given. *)

val execute :
  ?schedule:Schedule.t -> spec -> protocol:Acp.Protocol.kind -> seed:int ->
  outcome
(** Run once. [schedule] overrides the seed-derived one (replay,
    shrinking, frozen repros) — the workload stream is derived from
    [seed] independently of schedule generation, so editing the schedule
    never perturbs the operations. Exceptions escaping the simulation
    are caught and reported as {!Oracle.Run_exception}.
    @raise Invalid_argument if an explicit schedule fails
    {!Schedule.validate}. *)

val config_of :
  spec -> protocol:Acp.Protocol.kind -> seed:int -> Opc_cluster.Config.t
(** The cluster config {!execute} derives from [(spec, protocol, seed)]
    — chaos timeouts, spread placement, auto-restart, coverage
    recording on. *)

val execute_config :
  ?schedule:Schedule.t ->
  spec ->
  config:Opc_cluster.Config.t ->
  seed:int ->
  outcome
(** {!execute} with an explicit cluster config. Coverage campaigns use
    it to stress rare edges (tiny tombstone TTL/cap, duplicate storms)
    the default chaos config cannot reach; start from {!config_of} and
    override fields so [servers], [protocol] and [seed] stay consistent
    with the [spec] and [seed] given here. *)

(** {1 Campaigns} *)

type campaign = { spec : spec; outcomes : outcome list }

val campaign :
  ?protocols:Acp.Protocol.kind list ->
  ?first_seed:int ->
  seeds:int ->
  spec ->
  campaign
(** [seeds] runs per protocol (default: all five), seeded
    [first_seed .. first_seed + seeds - 1] — the same seeds, hence the
    same schedules and workloads, for every protocol. *)

val failures : campaign -> outcome list

val table : campaign -> Metrics.Table.t
(** Per-protocol pass/fail/commit/abort summary. *)

(** {1 Shrinking} *)

val shrink : ?max_attempts:int -> spec -> outcome -> Shrink.result
(** Minimise a failing outcome's schedule by deterministic replay
    (same spec, protocol and seed; only the schedule varies). *)

val repro_snippet :
  spec -> protocol:Acp.Protocol.kind -> seed:int -> Schedule.t -> string
(** A self-contained OCaml fragment that re-runs the given schedule —
    paste into a test to freeze a counterexample. *)

(** {1 Observed replay and incident autopsy} *)

val repro_command : spec -> protocol:Acp.Protocol.kind -> seed:int -> string
(** The verbatim shell command that reproduces this run through
    [bin/chaos] (assumes the spec's [dir_count] is the default — the
    CLI does not expose it). *)

val hosted_protocols : Acp.Protocol.kind -> Acp.Protocol.kind list
(** The protocol maps a cluster running this primary actually hosts:
    the primary itself, plus the PrN fallback when the primary is 1PC
    or L1PC. *)

val coverage_summaries :
  protocol:Acp.Protocol.kind ->
  int array ->
  Obs.Autopsy.coverage_summary list
(** Digest an outcome's [edge_hits] into per-hosted-protocol coverage
    summaries (declared/hit/never-hit); [[]] for an empty array. *)

val observed_config :
  spec -> protocol:Acp.Protocol.kind -> seed:int -> Opc_cluster.Config.t
(** {!config_of} with every collector enabled: spans, journal, 5 ms
    gauge sampling, host profiling and a 4096-slot flight recorder.
    Collectors are passive, so the run's verdict and every simulated
    metric are bit-identical to the unobserved replay. *)

val execute_observed :
  ?schedule:Schedule.t ->
  spec ->
  protocol:Acp.Protocol.kind ->
  seed:int ->
  outcome * Obs.Autopsy.source
(** Replay a run under {!observed_config} and package everything the
    collectors saw — plus the verdict, schedule literal, settle
    diagnostics and {!repro_command} — as an autopsy source. *)

val autopsy : ?max_attempts:int -> dir:string -> spec -> outcome -> string
(** Condense a failing outcome into an incident bundle: shrink its
    schedule ({!shrink}), replay the minimal schedule observed, write
    [dir/INCIDENT_<protocol>_<seed>/] via {!Obs.Autopsy.write} and
    re-parse it through {!Obs.Autopsy.validate}. Returns the bundle
    directory. A passing outcome skips the shrink and bundles its own
    schedule.
    @raise Failure if the freshly written bundle fails validation. *)
