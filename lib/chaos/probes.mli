(** Directed coverage probes.

    Hand-built scenarios for protocol edges the randomized chaos
    campaigns cannot reach: they need a {e semantic} conflict (two
    transactions racing for one dentry) or an exactly-placed network
    cut, neither of which a conflict-free closed-loop workload or a
    seeded fault schedule produces. Each probe drives a private
    four-server cluster to quiescence with the coverage tap on and
    reports the edges it took, so the coverage benchmark can fold them
    into the campaign bitmap and unit tests can pin each one to the
    specific transition it exists to reach.

    Probes are deterministic: no seeds, no randomness — the same
    binary produces the same edge counts every run. *)

type outcome = {
  edge_hits : int array;  (** per-{!Acp.Edges} id, [Acp.Edges.count] wide *)
  settled : bool;  (** the cluster reached quiescence *)
  conserved : bool;  (** the message ledger balanced on every tag *)
}

val conflict : Acp.Protocol.kind -> outcome
(** Race CREATE(dst/y) against RENAME(src/x -> dst/y) for eight name
    pairs. The create commits first (the rename's remote worker waits
    behind its directory lock), so the rename's apply fails and the
    worker votes NO: [updated_nack] on the 2PC family coordinators,
    [reject]->tombstone on 1PC workers, [vote_no] on L1PC. *)

val tombstone_ttl : unit -> outcome
(** 1PC conflict churn under a 100 microsecond tombstone TTL and a fast
    resend clock, over two waves: the second wave's UPDATE_REQ arrivals
    run the lazy GC over the first wave's tombstones — [ttl_expired]. *)

val tombstone_cap : unit -> outcome
(** Same conflict shape with a 10 s TTL but [tombstone_cap = 1]: the
    second NO vote evicts the first tombstone early — [cap_evicted]. *)

val stale_replay : unit -> outcome
(** One conflict pair, with the coordinator<->worker link cut just
    before the worker's NO vote leaves, then healed 25 ms later. The
    first resend through the healed link finds the tombstone long past
    its 100 microsecond TTL: the arrival's GC expires it
    ([ttl_expired]) and the request falls below the stale-sequence
    horizon ([update_req_stale]). The cut instant is calibrated by a
    ledger-polling twin run, so the probe survives timing shifts in
    the disk or lock models. *)

val all : unit -> (string * outcome) list
(** Every probe, labelled: the five per-protocol conflicts plus the
    three 1PC tombstone scenarios. *)
