(** Latency histogram.

    Records duration samples and reports count, mean, min/max and
    percentiles. Samples are kept exactly (this is a simulator — sample
    counts are modest and exactness beats approximation for asserting on
    results), sorted lazily on first query after an insert. *)

type t

val create : unit -> t
val record : t -> Simkit.Time.span -> unit
val count : t -> int
val is_empty : t -> bool
val mean : t -> Simkit.Time.span
(** Zero when empty. *)

val min_value : t -> Simkit.Time.span
val max_value : t -> Simkit.Time.span
(** Zero when empty. *)

val percentile : t -> float -> Simkit.Time.span
(** [percentile t 50.0] is the median (nearest-rank). Zero when empty.
    @raise Invalid_argument if the rank is outside [0, 100]. *)

val quantile : t -> float -> Simkit.Time.span
(** [quantile t 0.5] is the median (nearest-rank), [quantile t q] the
    q-quantile for [q] in [0, 1]. Zero when empty.
    @raise Invalid_argument if [q] is outside [0, 1]. *)

val quantiles : t -> float list -> Simkit.Time.span list
(** Batch {!quantile}: sorts the samples once and reads every requested
    rank, in input order — the cheap way to pull p50/p95/p99 out of a
    large run. *)

val total : t -> Simkit.Time.span

val merge : t -> t -> t
(** New histogram with the samples of both. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [n / mean / p50 / p95 / max] summary. *)
