type t = {
  mutable samples : int array;  (* ns values, sorted iff [sorted] *)
  mutable len : int;
  mutable sorted : bool;
  mutable total_ns : int;
}

let create () =
  { samples = [||]; len = 0; sorted = true; total_ns = 0 }

let record t span =
  let v = Simkit.Time.span_to_ns span in
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (max 64 (2 * t.len)) 0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- v;
  t.len <- t.len + 1;
  t.sorted <- false;
  t.total_ns <- t.total_ns + v

let count t = t.len
let is_empty t = t.len = 0

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort Int.compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let mean t =
  if t.len = 0 then Simkit.Time.zero_span
  else Simkit.Time.span_ns (t.total_ns / t.len)

let min_value t =
  if t.len = 0 then Simkit.Time.zero_span
  else begin
    ensure_sorted t;
    Simkit.Time.span_ns t.samples.(0)
  end

let max_value t =
  if t.len = 0 then Simkit.Time.zero_span
  else begin
    ensure_sorted t;
    Simkit.Time.span_ns t.samples.(t.len - 1)
  end

(* nearest-rank over the sorted samples; [q] in [0, 1]. *)
let quantile_sorted t q =
  let rank = int_of_float (ceil (q *. float_of_int t.len)) in
  let idx = max 0 (min (t.len - 1) (rank - 1)) in
  Simkit.Time.span_ns t.samples.(idx)

let quantile t q =
  if q < 0.0 || q > 1.0 || Float.is_nan q then
    invalid_arg "Histogram.quantile: rank outside [0, 1]";
  if t.len = 0 then Simkit.Time.zero_span
  else begin
    ensure_sorted t;
    quantile_sorted t q
  end

let quantiles t qs =
  List.iter
    (fun q ->
      if q < 0.0 || q > 1.0 || Float.is_nan q then
        invalid_arg "Histogram.quantiles: rank outside [0, 1]")
    qs;
  if t.len = 0 then List.map (fun _ -> Simkit.Time.zero_span) qs
  else begin
    ensure_sorted t;
    List.map (quantile_sorted t) qs
  end

let percentile t p =
  if p < 0.0 || p > 100.0 || Float.is_nan p then
    invalid_arg "Histogram.percentile: rank outside [0, 100]";
  quantile t (p /. 100.0)

let total t = Simkit.Time.span_ns t.total_ns

let merge a b =
  let m = create () in
  for i = 0 to a.len - 1 do
    record m (Simkit.Time.span_ns a.samples.(i))
  done;
  for i = 0 to b.len - 1 do
    record m (Simkit.Time.span_ns b.samples.(i))
  done;
  m

let pp_summary ppf t =
  if t.len = 0 then Fmt.string ppf "n=0"
  else
    Fmt.pf ppf "n=%d mean=%a p50=%a p95=%a max=%a" t.len Simkit.Time.pp_span
      (mean t) Simkit.Time.pp_span (percentile t 50.0) Simkit.Time.pp_span
      (percentile t 95.0) Simkit.Time.pp_span (max_value t)
