(** ASCII swimlane rendering of traces.

    Turns a trace into a timeline with one column per source — the
    textual equivalent of the paper's protocol figures:

    {v
    time      | mds0                 | mds1
    ----------+----------------------+---------------------
    0s        | force STARTED        |
    10.24ms   | send UPDATE_REQ t0.0 |
    10.34ms   |                      | force UPDATES+COMMIT
    v}

    Sources become columns in order of first appearance (or as given);
    entries are rendered as ["<kind> <detail>"], truncated to the column
    width. Entries from unlisted sources are dropped. *)

val render :
  ?sources:string list ->
  ?keep:(Trace.entry -> bool) ->
  ?column_width:int ->
  Trace.entry list ->
  string
(** [keep] filters entries (default: keep all); [column_width] defaults
    to 28 characters. A cell wider than the column is cut to exactly
    [column_width] characters, the last a ['~'] marker; widths [<= 0]
    render empty cells rather than raising. *)

val print :
  ?sources:string list ->
  ?keep:(Trace.entry -> bool) ->
  ?column_width:int ->
  Trace.t ->
  unit
(** Render a trace's entries to stdout. *)
