(** Interned, structured event labels.

    An event label names what a scheduled callback does ("net.deliver",
    "lock.timeout") and which subsystem owns it. Labels are interned:
    [v subsystem name] returns the unique {!t} for that pair, carrying a
    dense integer {!id} assigned in first-intern order. Call sites bind
    their labels once, at module-initialization or assembly time, so the
    engine's dispatch path never touches a string — profilers attribute
    a dispatch by indexing a flat array with [id] ({!Obs.Prof}). *)

type subsystem =
  | Engine  (** the simulation kernel itself (residual bucket) *)
  | Net  (** message delivery, failure detection *)
  | Storage  (** disk service completions, SAN fencing *)
  | Locks  (** grants, re-entrant wakeups, lease timeouts *)
  | Acp  (** protocol steps and timers of both commit protocols *)
  | Chaos  (** fault injection and chaos-harness bookkeeping *)
  | Cluster  (** node timers: compute, heartbeats, restarts, batching *)
  | Other  (** unattributed (tests, ad-hoc schedules) *)

val subsystem_name : subsystem -> string
(** Lowercase stable name, e.g. [Storage] -> ["storage"]. *)

type t = private { id : int; subsystem : subsystem; name : string }

val v : subsystem -> string -> t
(** [v subsystem name] interns the label: the same pair always returns
    the same value (and the same [id]). Not for hot paths — bind the
    result once and reuse it. *)

val id : t -> int
(** Dense from 0 in first-intern order; [0 <= id < count ()]. *)

val of_id : int -> t option
(** The label interned with that [id], if any. A linear scan of the
    intern table — for renderers turning recorded ids back into names,
    never for hot paths. *)

val name : t -> string

val subsystem : t -> subsystem

val count : unit -> int
(** Number of distinct labels interned so far. *)

val pp : Format.formatter -> t -> unit
(** ["subsystem/name"]. *)

val event : t
(** The engine's default label for [schedule]/[schedule_at]
    ([Other]/"event"). *)

val deferred : t
(** The engine's default label for [defer] ([Other]/"deferred"). *)
