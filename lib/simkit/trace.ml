type entry = { time : Time.t; source : string; kind : string; detail : string }

type t = { recording : bool; mutable entries : entry list; mutable length : int }

let create () = { recording = true; entries = []; length = 0 }
let disabled () = { recording = false; entries = []; length = 0 }
let is_recording t = t.recording

let emit t ~time ~source ~kind detail =
  if t.recording then begin
    t.entries <- { time; source; kind; detail } :: t.entries;
    t.length <- t.length + 1
  end

(* On a disabled trace the format arguments are consumed without being
   rendered ([ikfprintf] never touches the formatter), so instrumented
   hot paths cost a test and an indirect call, not a string build. *)
let emitf t ~time ~source ~kind fmt =
  if t.recording then
    Format.kasprintf (fun detail -> emit t ~time ~source ~kind detail) fmt
  else Format.ikfprintf ignore Format.str_formatter fmt

let emit_lazy t ~time ~source ~kind detail =
  if t.recording then emit t ~time ~source ~kind (detail ())

let entries t = List.rev t.entries
let length t = t.length

let clear t =
  t.entries <- [];
  t.length <- 0

let matches ?source ?kind e =
  (match source with None -> true | Some s -> String.equal e.source s)
  && match kind with None -> true | Some k -> String.equal e.kind k

let count ?source ?kind t =
  List.fold_left
    (fun acc e -> if matches ?source ?kind e then acc + 1 else acc)
    0 t.entries

let find_all ?source ?kind t = List.filter (matches ?source ?kind) (entries t)

let pp_entry ppf e =
  Fmt.pf ppf "%a %-10s %-14s %s" Time.pp e.time e.source e.kind e.detail

let dump ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (entries t)
