(* 4-ary array min-heap with hole-based in-place sifting: each level of
   a sift moves one element instead of swapping (one write per level),
   and the wider fan-out halves the tree depth — fewer comparator calls
   and better cache behavior than the textbook binary version for the
   push/pop churn a discrete-event queue produces. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  capacity : int;  (* initial backing-array size, applied on first push *)
  mutable arr : 'a array;
  mutable len : int;
}

let create ?(capacity = 64) ~cmp () =
  if capacity < 1 then invalid_arg "Heap.create: capacity < 1";
  { cmp; capacity; arr = [||]; len = 0 }

let length h = h.len
let is_empty h = h.len = 0

(* The backing array is allocated lazily on the first push so that [create]
   needs no witness element. Once allocated, unused slots keep stale
   elements; they are unreachable through the API and are overwritten on
   reuse, which is fine for the simulation workloads this serves. *)
let ensure_capacity h x =
  if h.len = Array.length h.arr then
    if h.len = 0 then h.arr <- Array.make h.capacity x
    else begin
      let bigger = Array.make (2 * h.len) h.arr.(0) in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end

let push h x =
  ensure_capacity h x;
  let a = h.arr in
  let i = ref h.len in
  h.len <- h.len + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let parent = (!i - 1) lsr 2 in
    let p = a.(parent) in
    if h.cmp x p < 0 then begin
      a.(!i) <- p;
      i := parent
    end
    else stop := true
  done;
  a.(!i) <- x

let peek h = if h.len = 0 then None else Some h.arr.(0)

(* Sift the detached last element down from the root hole. *)
let sift_down_last h last =
  let a = h.arr in
  let n = h.len in
  let i = ref 0 in
  let stop = ref false in
  while not !stop do
    let child = (4 * !i) + 1 in
    if child >= n then stop := true
    else begin
      let m = ref child in
      let hi = if child + 4 < n then child + 4 else n in
      for c = child + 1 to hi - 1 do
        if h.cmp a.(c) a.(!m) < 0 then m := c
      done;
      if h.cmp a.(!m) last < 0 then begin
        a.(!i) <- a.(!m);
        i := !m
      end
      else stop := true
    end
  done;
  a.(!i) <- last

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then sift_down_last h h.arr.(h.len);
    Some top
  end

let pop_exn h =
  if h.len = 0 then invalid_arg "Heap.pop_exn: empty heap"
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then sift_down_last h h.arr.(h.len);
    top
  end

let clear h = h.len <- 0

let fold_unordered f acc h =
  let acc = ref acc in
  for i = 0 to h.len - 1 do
    acc := f !acc h.arr.(i)
  done;
  !acc

let to_sorted_list h =
  let copy =
    { cmp = h.cmp; capacity = h.capacity; arr = Array.sub h.arr 0 h.len;
      len = h.len }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []
