(** Array-backed 4-ary min-heap.

    General-purpose priority queue for simulation components (the event
    engine itself embeds a monomorphic copy of this structure — see
    {!Engine}). Written for predictable O(log n) push/pop with no
    allocation beyond the backing array: 4-way fan-out halves the tree
    depth of the binary version and the sifts move elements into a hole
    instead of swapping, one write per level.

    Elements are compared with the [cmp] function given at creation time;
    ties are broken by nothing — callers that need a deterministic order
    must encode the tie-break in the element itself. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (minimum first).
    [capacity] is the initial size of the backing array (default 64).
    @raise Invalid_argument if [capacity < 1]. *)

val length : 'a t -> int
(** Number of elements currently in the heap. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x]. Amortised O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Remove every element. Does not shrink the backing array. *)

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: the heap contents in ascending order. O(n log n);
    intended for tests and debugging. *)

val fold_unordered : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold over elements in unspecified order without disturbing the heap. *)
