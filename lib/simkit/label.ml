type subsystem =
  | Engine
  | Net
  | Storage
  | Locks
  | Acp
  | Chaos
  | Cluster
  | Other

let subsystem_name = function
  | Engine -> "engine"
  | Net -> "net"
  | Storage -> "storage"
  | Locks -> "locks"
  | Acp -> "acp"
  | Chaos -> "chaos"
  | Cluster -> "cluster"
  | Other -> "other"

type t = { id : int; subsystem : subsystem; name : string }

(* Intern table. Labels are created at module-initialization or assembly
   time (a handful of constants per subsystem), never per event, so a
   Hashtbl keyed by (subsystem, name) is plenty. Ids are dense from 0 in
   first-intern order — profilers index flat arrays by them. *)
let interned : (subsystem * string, t) Hashtbl.t = Hashtbl.create 64

let all_rev = ref []
let next_id = ref 0

let v subsystem name =
  let key = (subsystem, name) in
  match Hashtbl.find_opt interned key with
  | Some l -> l
  | None ->
      let l = { id = !next_id; subsystem; name } in
      incr next_id;
      Hashtbl.add interned key l;
      all_rev := l :: !all_rev;
      l

let of_id i = List.find_opt (fun l -> l.id = i) !all_rev

let id l = l.id
let name l = l.name
let subsystem l = l.subsystem
let count () = !next_id
let pp ppf l = Format.fprintf ppf "%s/%s" (subsystem_name l.subsystem) l.name

(* The engine's own defaults. *)
let event = v Other "event"
let deferred = v Other "deferred"
