type t = {
  mutable clock : Time.t;
  (* Inline 4-ary min-heap of pending events, ordered by (at, seq). The
     heap is specialized here rather than using the generic {!Heap} so
     the hot loop compares the two int fields directly — no comparator
     closure, no [option] boxing on pop. Slots beyond [qlen] keep stale
     handles until overwritten; they are unreachable through the API. *)
  mutable q : handle array;
  mutable qlen : int;
  mutable next_seq : int;
  mutable dispatched : int;
  mutable cancelled_in_queue : int;
  (* Clock-advance observer: called with the target time just before the
     clock moves forward, so passive samplers can materialize readings at
     intermediate instants without ever scheduling events of their own.
     [has_observer] keeps the common (unobserved) path to one load and a
     conditional branch. *)
  mutable has_observer : bool;
  mutable observer : Time.t -> unit;
  (* Dispatch observer pair: [before_dispatch] runs just before an event's
     callback, [after_dispatch] just after (also on the exception path),
     receiving the event's label. Same passivity contract and same
     one-load-one-branch disabled cost as the clock observer; used by the
     host profiler ({!Obs.Prof}) to stamp clocks around each callback. *)
  mutable has_dispatch_observer : bool;
  mutable before_dispatch : unit -> unit;
  mutable after_dispatch : Label.t -> unit;
  (* Dispatch tap: a second, independent hook called with (at, label)
     just before each event's callback runs. Separate from the observer
     pair so a flight recorder ({!Obs.Recorder}) can ride along with the
     profiler — each slot holds at most one client. Same passivity
     contract and same one-load-one-branch disabled cost. *)
  mutable has_dispatch_tap : bool;
  mutable dispatch_tap : Time.t -> Label.t -> unit;
  (* High-water mark of [qlen] (raw heap occupancy, cancelled tombstones
     included) since creation or the last [reset_pending_high_water]. *)
  mutable qlen_hwm : int;
}

and handle = {
  owner : t;
  at : Time.t;
  seq : int;
  label : Label.t;
  callback : unit -> unit;
  mutable state : state;
}

and state = Pending | Cancelled | Done

exception Event_failure of string * exn

(* Events order by (timestamp, sequence number): FIFO among equal
   timestamps, hence full determinism. [seq] is unique, so this is a
   strict total order and the heap's pop sequence is independent of the
   heap's internal layout. *)
let before a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c < 0 else a.seq < b.seq

let create () =
  {
    clock = Time.zero;
    q = [||];
    qlen = 0;
    next_seq = 0;
    dispatched = 0;
    cancelled_in_queue = 0;
    has_observer = false;
    observer = (fun _ -> ());
    has_dispatch_observer = false;
    before_dispatch = (fun () -> ());
    after_dispatch = (fun _ -> ());
    has_dispatch_tap = false;
    dispatch_tap = (fun _ _ -> ());
    qlen_hwm = 0;
  }

let now t = t.clock

let set_clock_observer t f =
  t.has_observer <- true;
  t.observer <- f

let set_dispatch_observer t ~before ~after =
  t.has_dispatch_observer <- true;
  t.before_dispatch <- before;
  t.after_dispatch <- after

let set_dispatch_tap t f =
  t.has_dispatch_tap <- true;
  t.dispatch_tap <- f

(* Every clock advance funnels through here so the observer sees each
   forward move exactly once, before state at the new instant runs. *)
let advance_clock t at =
  if t.has_observer && Time.( > ) at t.clock then t.observer at;
  t.clock <- at

(* The backing array is allocated lazily on the first push so that
   [create] needs no witness element. *)
let ensure_capacity t h =
  if t.qlen = Array.length t.q then
    if t.qlen = 0 then t.q <- Array.make 256 h
    else begin
      let bigger = Array.make (2 * t.qlen) t.q.(0) in
      Array.blit t.q 0 bigger 0 t.qlen;
      t.q <- bigger
    end

(* Hole-based sift: move parents down into the hole and write the new
   element once, instead of repeated swaps. *)
let heap_push t h =
  ensure_capacity t h;
  let q = t.q in
  let i = ref t.qlen in
  t.qlen <- t.qlen + 1;
  if t.qlen > t.qlen_hwm then t.qlen_hwm <- t.qlen;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let parent = (!i - 1) lsr 2 in
    let p = q.(parent) in
    if before h p then begin
      q.(!i) <- p;
      i := parent
    end
    else stop := true
  done;
  q.(!i) <- h

(* Remove and return the minimum. Caller guarantees [qlen > 0]. *)
let heap_pop t =
  let q = t.q in
  let top = q.(0) in
  let n = t.qlen - 1 in
  t.qlen <- n;
  if n > 0 then begin
    let last = q.(n) in
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let child = (4 * !i) + 1 in
      if child >= n then stop := true
      else begin
        let m = ref child in
        let hi = if child + 4 < n then child + 4 else n in
        for c = child + 1 to hi - 1 do
          if before q.(c) q.(!m) then m := c
        done;
        if before q.(!m) last then begin
          q.(!i) <- q.(!m);
          i := !m
        end
        else stop := true
      end
    done;
    q.(!i) <- last
  end;
  top

let enqueue t ~at ~label callback =
  let h = { owner = t; at; seq = t.next_seq; label; callback; state = Pending } in
  t.next_seq <- t.next_seq + 1;
  heap_push t h;
  h

let schedule t ?(label = Label.event) ~after f =
  enqueue t ~at:(Time.add t.clock after) ~label f

let schedule_at t ?(label = Label.event) ~at f =
  if Time.( < ) at t.clock then
    invalid_arg "Engine.schedule_at: time in the past";
  enqueue t ~at ~label f

let defer t ?(label = Label.deferred) f = enqueue t ~at:t.clock ~label f

let cancel h =
  if h.state = Pending then begin
    h.state <- Cancelled;
    h.owner.cancelled_in_queue <- h.owner.cancelled_in_queue + 1
  end

let is_pending h = h.state = Pending

let pending t = t.qlen - t.cancelled_in_queue
let dispatched t = t.dispatched
let pending_high_water t = t.qlen_hwm
let reset_pending_high_water t = t.qlen_hwm <- t.qlen

(* Discard tombstones left by [cancel] from the top of the heap. *)
let drop_cancelled t =
  while t.qlen > 0 && t.q.(0).state == Cancelled do
    ignore (heap_pop t);
    t.cancelled_in_queue <- t.cancelled_in_queue - 1
  done

let dispatch t h =
  advance_clock t h.at;
  h.state <- Done;
  t.dispatched <- t.dispatched + 1;
  (* Tapped before the callback runs, so on a crash the recorder's last
     entry is the event that was executing. *)
  if t.has_dispatch_tap then t.dispatch_tap h.at h.label;
  if t.has_dispatch_observer then begin
    t.before_dispatch ();
    (try h.callback ()
     with exn ->
       t.after_dispatch h.label;
       raise (Event_failure (Label.name h.label, exn)));
    t.after_dispatch h.label
  end
  else
    try h.callback ()
    with exn -> raise (Event_failure (Label.name h.label, exn))

let step t =
  drop_cancelled t;
  if t.qlen = 0 then false
  else begin
    dispatch t (heap_pop t);
    true
  end

type outcome = Drained | Reached_limit | Reached_until

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> -1 | Some n -> n) in
  let rec loop () =
    if !budget = 0 then Reached_limit
    else begin
      drop_cancelled t;
      if t.qlen = 0 then Drained
      else
        let h = t.q.(0) in
        match until with
        | Some stop when Time.( > ) h.at stop ->
            advance_clock t stop;
            Reached_until
        | _ ->
            ignore (heap_pop t);
            dispatch t h;
            if !budget > 0 then decr budget;
            loop ()
    end
  in
  let outcome = loop () in
  (match (outcome, until) with
  | Drained, Some stop when Time.( < ) t.clock stop -> advance_clock t stop
  | _ -> ());
  outcome
