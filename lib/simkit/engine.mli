(** Discrete-event simulation engine.

    An engine owns a virtual clock and a priority queue of pending events.
    [run] repeatedly pops the earliest event, advances the clock to its
    timestamp and executes its callback; callbacks schedule further events.
    Events with equal timestamps execute in scheduling (FIFO) order, so a
    run is a deterministic function of the initial schedule and the
    callbacks — there is no hidden nondeterminism anywhere in the kernel.

    Callbacks must not raise: an escaping exception aborts the run and is
    re-raised to the caller of [run] wrapped in [Event_failure] with the
    event's label, because a half-dispatched simulation has no meaningful
    state to continue from. *)

type t

type handle
(** A cancellable reference to a scheduled event. *)

exception Event_failure of string * exn
(** [Event_failure (label, exn)]: the callback of the event labelled
    [label] (the {!Label.name} of its label) raised [exn]. *)

val create : unit -> t
(** A fresh engine with the clock at {!Time.zero} and no pending events. *)

val now : t -> Time.t
(** Current simulated time. *)

val schedule :
  t -> ?label:Label.t -> after:Time.span -> (unit -> unit) -> handle
(** [schedule t ~after f] runs [f] at [now t + after]. [label] names the
    event in error reports, debugging dumps and profiles (default
    {!Label.event}); call sites bind their interned label once, not per
    call. *)

val schedule_at : t -> ?label:Label.t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule_at t ~at f] runs [f] at absolute time [at].
    @raise Invalid_argument if [at] is in the past. *)

val defer : t -> ?label:Label.t -> (unit -> unit) -> handle
(** [defer t f] schedules [f] at the current instant, after all events
    already scheduled for this instant. Useful to break call cycles. *)

val cancel : handle -> unit
(** Cancel the event if it has not been dispatched yet; otherwise a no-op.
    Idempotent. *)

val is_pending : handle -> bool
(** Whether the event is still scheduled (neither dispatched nor
    cancelled). *)

type outcome =
  | Drained  (** the event queue became empty *)
  | Reached_limit  (** stopped after dispatching [max_events] events *)
  | Reached_until  (** the next event lies beyond [until] *)

val run : ?until:Time.t -> ?max_events:int -> t -> outcome
(** Run events in order. With [until], stops (without dispatching) when the
    next event's timestamp exceeds [until] and advances the clock to
    [until]. With [max_events], stops after that many dispatches. A stopped
    engine can be [run] again to continue. *)

val step : t -> bool
(** Dispatch exactly one event. [false] if the queue was empty. *)

val pending : t -> int
(** Number of scheduled, not-yet-cancelled events. *)

val dispatched : t -> int
(** Total events dispatched since creation. *)

val pending_high_water : t -> int
(** High-water mark of the raw heap occupancy (cancelled-but-unpopped
    tombstones included) since creation or the last
    {!reset_pending_high_water}. *)

val reset_pending_high_water : t -> unit
(** Reset the high-water mark to the current occupancy, so periodic
    samplers can read per-interval maxima. *)

val set_clock_observer : t -> (Time.t -> unit) -> unit
(** Install [f], called with the target time immediately before every
    forward clock move (event dispatch or [run ~until] idle advance) —
    i.e. while [now] still reads the previous instant. The observer must
    be passive: it must not schedule, cancel or run events. Intended for
    simulated-time samplers ({!Obs.Timeseries}); at most one observer,
    later calls replace earlier ones. When no observer is installed the
    cost on the dispatch path is one load and one branch. *)

val set_dispatch_observer :
  t -> before:(unit -> unit) -> after:(Label.t -> unit) -> unit
(** Install a pre/post pair around every event dispatch: [before ()] runs
    immediately before the event's callback, [after label] immediately
    after it returns — including when the callback raises, in which case
    [after] runs before the exception is re-raised as {!Event_failure}.
    The pair must be passive with respect to the simulation: it must not
    schedule, cancel or run events, read the simulated clock into
    simulation state, or consume randomness — it exists so host-side
    profilers ({!Obs.Prof}) can stamp monotonic/allocation counters
    around each callback. At most one observer pair; later calls replace
    earlier ones. When none is installed the cost on the dispatch path is
    one load and one branch. *)

val set_dispatch_tap : t -> (Time.t -> Label.t -> unit) -> unit
(** Install [f], called with the event's timestamp and label immediately
    before each event's callback runs — so after a crash the last tapped
    entry names the event that was executing. A slot independent of
    {!set_dispatch_observer} so a flight recorder ({!Obs.Recorder}) can
    coexist with the host profiler: each slot holds at most one client,
    later calls replace earlier ones. The same passivity contract
    applies (no scheduling, no clock reads into simulation state, no
    randomness), and when no tap is installed the cost on the dispatch
    path is one load and one branch. *)
