(* A cell wider than the column is cut to exactly [width] characters,
   the last one a '~' continuation marker; a non-positive width has no
   room for anything, marker included. *)
let truncate width s =
  if width <= 0 then ""
  else if String.length s <= width then s
  else String.sub s 0 (width - 1) ^ "~"

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let render ?sources ?(keep = fun _ -> true) ?(column_width = 28) entries =
  let column_width = max 0 column_width in
  let entries = List.filter keep entries in
  let sources =
    match sources with
    | Some s -> s
    | None ->
        List.fold_left
          (fun acc (e : Trace.entry) ->
            if List.mem e.source acc then acc else acc @ [ e.source ])
          [] entries
  in
  let entries =
    List.filter (fun (e : Trace.entry) -> List.mem e.source sources) entries
  in
  let time_width =
    List.fold_left
      (fun acc (e : Trace.entry) ->
        max acc (String.length (Fmt.str "%a" Time.pp e.time)))
      4 entries
  in
  let buf = Buffer.create 1024 in
  let row time cells =
    Buffer.add_string buf (pad time_width time);
    List.iter
      (fun cell ->
        Buffer.add_string buf " | ";
        Buffer.add_string buf (pad column_width (truncate column_width cell)))
      cells;
    Buffer.add_char buf '\n'
  in
  row "time" sources;
  Buffer.add_string buf (String.make time_width '-');
  List.iter
    (fun _ ->
      Buffer.add_string buf "-+-";
      Buffer.add_string buf (String.make column_width '-'))
    sources;
  Buffer.add_char buf '\n';
  List.iter
    (fun (e : Trace.entry) ->
      let cell = e.kind ^ " " ^ e.detail in
      row
        (Fmt.str "%a" Time.pp e.time)
        (List.map (fun s -> if s = e.source then cell else "") sources))
    entries;
  Buffer.contents buf

let print ?sources ?keep ?column_width trace =
  print_string (render ?sources ?keep ?column_width (Trace.entries trace))
