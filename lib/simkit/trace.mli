(** Structured simulation traces.

    A trace is an append-only record of interesting simulation moments
    (message sent, log forced, lock granted, crash, ...). Components emit
    entries tagged with the simulated time, the emitting entity and a kind;
    examples print them as protocol timelines (the paper's Figures 2–5) and
    tests assert on them.

    A disabled trace drops entries in O(1), so production-style runs pay
    nothing for the instrumentation points. *)

type entry = {
  time : Time.t;
  source : string;  (** emitting entity, e.g. ["mds1"], ["client0"] *)
  kind : string;  (** category, e.g. ["send"], ["log.force"], ["crash"] *)
  detail : string;  (** free-form description *)
}

type t

val create : unit -> t
(** A recording trace. *)

val disabled : unit -> t
(** A trace that drops every entry. *)

val is_recording : t -> bool

val emit : t -> time:Time.t -> source:string -> kind:string -> string -> unit

val emitf :
  t ->
  time:Time.t ->
  source:string ->
  kind:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted variant of {!emit}. On a disabled trace nothing is
    rendered — the format arguments are consumed without building the
    string, so instrumentation points cost ~zero in production-style
    runs (the argument {e expressions} at the call site are still
    evaluated, so keep those to field reads). *)

val emit_lazy :
  t -> time:Time.t -> source:string -> kind:string -> (unit -> string) ->
  unit
(** [emit_lazy t ... detail] forces [detail] only when the trace
    records — for call sites whose description is expensive to build
    even before formatting. *)

val entries : t -> entry list
(** All entries in emission order. *)

val length : t -> int

val clear : t -> unit

val count : ?source:string -> ?kind:string -> t -> int
(** Entries matching the given source and/or kind filters. *)

val find_all : ?source:string -> ?kind:string -> t -> entry list

val pp_entry : Format.formatter -> entry -> unit

val dump : Format.formatter -> t -> unit
(** All entries, one per line, in emission order. *)
