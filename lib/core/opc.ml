(** One Phase Commit — reproduction of Congiu et al., CLUSTER 2012.

    Facade re-exporting the whole stack under one namespace. A typical
    program builds a {!Cluster} from a {!Config}, populates directories,
    submits {!Mds.Op} operations and reads the metrics back — see
    [examples/quickstart.ml].

    Layers (bottom-up):
    - {!Simkit} — deterministic discrete-event kernel
    - {!Netsim} — cluster interconnect with partitions and a heartbeat
      failure detector
    - {!Storage} — shared disk, write-ahead logs, SAN fencing
    - {!Locks} — two-phase-locking lock manager
    - {!Mds} — inodes, dentries, placement, plans, invariants
    - {!Obs} — passive observability: tracer, journal, flight recorder,
      edge-coverage taps and autopsy bundles
    - {!Acp} — the commitment protocols: PrN (2PC), PrC, EP and the
      paper's 1PC
    - {!Cluster} (with {!Config}, {!Node}, {!Fault}, {!Msg}) — the
      assembled metadata service
    - {!Workload} — operation generators
    - {!Chaos} — seeded fault schedules, correctness oracles and
      counterexample shrinking over the whole stack
    - {!Experiment} — runners reproducing the paper's Table I and
      Figure 6, plus ablation sweeps
    - {!Drill} — crash-and-recover campaigns aggregating MTTR
      percentiles against per-protocol recovery SLOs *)

module Simkit = Simkit
module Netsim = Netsim
module Storage = Storage
module Locks = Locks
module Mds = Mds
module Acp = Acp
module Obs = Obs
module Metrics = Metrics
module Config = Opc_cluster.Config
module Msg = Opc_cluster.Msg
module Node = Opc_cluster.Node
module Cluster = Opc_cluster.Cluster
module Ingress = Opc_cluster.Ingress
module Batching = Opc_cluster.Batching
module Report = Opc_cluster.Report
module Fault = Opc_cluster.Fault
module Workload = Workload
module Chaos = Chaos
module Experiment = Experiment
module Drill = Drill
