type status = { committed : int; aborted : int; serving : int }

type run = {
  seed : int;
  crash_server : int;
  servers : int;
  before : status;
  after : status;
  windows : Obs.Mttr.window list;
}

type segment = { p50_ns : int; p99_ns : int }

type stats = {
  protocol : Acp.Protocol.kind;
  runs : run list;
  windows : int;
  detect : segment;
  fence : segment;
  scan : segment;
  resolve : segment;
  total : segment;
  dfs_p99_ns : int;
}

type slo = { fence_p99_ns : int; dfs_p99_ns : int; total_p99_ns : int }

(* Committed budgets, calibrated from the 5-seed campaign (see
   EXPERIMENTS.md, "Recovery drills & incident autopsy") with ~1.5x
   headroom, so seed-to-seed jitter never trips the gate but a
   structural regression — an extra resend round before takeover, a
   lost fence short-circuit, a slower log scan — does.

   Measured p99s at calibration time: detect 100 ms for everyone (one
   detector sweep); fence 10 ms for 1PC and 0 for the rest; d+f+s
   310-381 ms, L1PC lowest because logless recovery has no log
   partition to scan.

   Shape, not noise: L1PC's fence budget is exactly {e zero} — logless
   recovery must never touch the SAN fencing controller — and its
   other budgets sit strictly under 1PC's. *)
let slo_for = function
  | Acp.Protocol.Lp1 ->
      { fence_p99_ns = 0; dfs_p99_ns = 450_000_000; total_p99_ns = 500_000_000 }
  | Acp.Protocol.Opc ->
      {
        fence_p99_ns = 30_000_000;
        dfs_p99_ns = 550_000_000;
        total_p99_ns = 600_000_000;
      }
  | Acp.Protocol.Prn | Acp.Protocol.Prc | Acp.Protocol.Ep ->
      {
        fence_p99_ns = 30_000_000;
        dfs_p99_ns = 600_000_000;
        total_p99_ns = 650_000_000;
      }

let impossible_slo = { fence_p99_ns = 0; dfs_p99_ns = 0; total_p99_ns = 0 }

let label_probe = Simkit.Label.v Cluster "drill.probe"

let snapshot cluster =
  let committed, aborted = Opc_cluster.Cluster.txn_counts cluster in
  let serving =
    Array.fold_left
      (fun acc n -> if Opc_cluster.Node.is_up n then acc + 1 else acc)
      0
      (Opc_cluster.Cluster.nodes cluster)
  in
  { committed; aborted; serving }

(* Mirrors {!Experiment.run_timeline} — same config, workload stream and
   crash point — but keeps the cluster in hand to snapshot service
   status at the crash instant and after settling. *)
let run_one ?(seed = 1) ?(crash_server = 1) protocol =
  let config =
    {
      Experiment.timeline_config with
      Opc_cluster.Config.protocol;
      seed;
      (* Unlike the timeline experiment's 50 ms restart — which beats the
         100 ms detector sweep, so the victim recovers before anyone
         suspects it — drills keep the victim down for 300 ms so the
         survivor walks the whole takeover path: suspect, fence (logged
         protocols only), scan. That is the path the SLOs budget. *)
      restart_delay = Simkit.Time.span_ms 300;
    }
  in
  let cluster = Opc_cluster.Cluster.create config in
  let root = Opc_cluster.Cluster.root cluster in
  let servers = config.Opc_cluster.Config.servers in
  let dirs =
    Array.init servers (fun i ->
        Opc_cluster.Cluster.add_directory cluster ~parent:root
          ~name:(Printf.sprintf "d%d" i) ~server:i ())
  in
  ignore
    (Workload.closed_loop cluster ~dirs ~clients:6 ~ops_per_client:15
       ~mix:Chaos.Runner.chaos_mix
       ~rng:(Simkit.Rng.create ~seed:(seed + 1_000_003))
       ());
  let crash_time =
    Simkit.Time.add
      (Opc_cluster.Cluster.now cluster)
      (Simkit.Time.span_ms 100)
  in
  (* Scheduled before the fault is injected, so at the shared instant the
     probe's lower sequence number runs first: [before] is the state the
     crash interrupts. *)
  let before = ref { committed = 0; aborted = 0; serving = 0 } in
  ignore
    (Simkit.Engine.schedule_at
       (Opc_cluster.Cluster.engine cluster)
       ~label:label_probe ~at:crash_time
       (fun () -> before := snapshot cluster));
  Opc_cluster.Fault.inject cluster
    [ Opc_cluster.Fault.Crash { server = crash_server; at = crash_time } ];
  Opc_cluster.Cluster.run_for cluster (Simkit.Time.span_ms 600);
  (match
     Opc_cluster.Cluster.settle ~deadline:(Simkit.Time.span_s 120) cluster
   with
  | Opc_cluster.Cluster.Quiescent -> ()
  | Opc_cluster.Cluster.Deadline_exceeded ->
      failwith
        (Printf.sprintf "drill %s seed %d: settle deadline exceeded"
           (Acp.Protocol.name protocol) seed)
  | Opc_cluster.Cluster.Stuck ->
      failwith
        (Printf.sprintf "drill %s seed %d: cluster stuck"
           (Acp.Protocol.name protocol) seed));
  let windows =
    Obs.Mttr.windows
      (Obs.Journal.entries (Opc_cluster.Cluster.journal cluster))
  in
  {
    seed;
    crash_server;
    servers;
    before = !before;
    after = snapshot cluster;
    windows;
  }

(* Nearest-rank percentile over ns values; 0 when empty (checked
   separately — an empty campaign is a structural failure). *)
let percentile p values =
  match List.sort compare values with
  | [] -> 0
  | sorted ->
      let n = List.length sorted in
      let rank =
        max 0 (min (n - 1) (int_of_float (ceil (p /. 100. *. float n)) - 1))
      in
      List.nth sorted rank

let seg values = { p50_ns = percentile 50. values; p99_ns = percentile 99. values }

let campaign ?(seeds = 5) ?(first_seed = 1) protocol =
  let runs =
    List.init seeds (fun i -> run_one ~seed:(first_seed + i) protocol)
  in
  let ws = List.concat_map (fun (r : run) -> r.windows) runs in
  let span f = List.map (fun w -> Simkit.Time.span_to_ns (f w)) ws in
  {
    protocol;
    runs;
    windows = List.length ws;
    detect = seg (span (fun (w : Obs.Mttr.window) -> w.detect));
    fence = seg (span (fun (w : Obs.Mttr.window) -> w.fence));
    scan = seg (span (fun (w : Obs.Mttr.window) -> w.scan));
    resolve = seg (span (fun (w : Obs.Mttr.window) -> w.resolve));
    total = seg (List.map (fun w -> Simkit.Time.span_to_ns (Obs.Mttr.total w)) ws);
    dfs_p99_ns =
      percentile 99.
        (List.map
           (fun (w : Obs.Mttr.window) ->
             Simkit.Time.to_ns w.scan_at - Simkit.Time.to_ns w.start)
           ws);
  }

let check ?slo stats =
  let slo = match slo with Some s -> s | None -> slo_for stats.protocol in
  let name = Acp.Protocol.name stats.protocol in
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> fails := m :: !fails) fmt in
  if stats.windows < List.length stats.runs then
    fail "%s FAILS recovery SLO: %d windows measured over %d drills" name
      stats.windows
      (List.length stats.runs);
  List.iter
    (fun r ->
      if r.before.serving <> r.servers then
        fail "%s FAILS recovery SLO: seed %d had %d/%d nodes serving at the \
              crash instant"
          name r.seed r.before.serving r.servers;
      if r.after.serving <> r.servers then
        fail "%s FAILS recovery SLO: seed %d settled with %d/%d nodes serving"
          name r.seed r.after.serving r.servers)
    stats.runs;
  if stats.fence.p99_ns > slo.fence_p99_ns then
    fail "%s FAILS recovery SLO: fence p99 %dns > budget %dns" name
      stats.fence.p99_ns slo.fence_p99_ns;
  if stats.dfs_p99_ns > slo.dfs_p99_ns then
    fail "%s FAILS recovery SLO: detect+fence+scan p99 %dns > budget %dns"
      name stats.dfs_p99_ns slo.dfs_p99_ns;
  if stats.total.p99_ns > slo.total_p99_ns then
    fail "%s FAILS recovery SLO: total MTTR p99 %dns > budget %dns" name
      stats.total.p99_ns slo.total_p99_ns;
  List.rev !fails
