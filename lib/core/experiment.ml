type fig6_point = {
  protocol : Acp.Protocol.kind;
  throughput : float;
  committed : int;
  aborted : int;
  mean_latency : Simkit.Time.span;
  mean_lock_hold : Simkit.Time.span;
}

let paper_fig6 = function
  | Acp.Protocol.Prn -> 15.0
  | Acp.Protocol.Prc -> 15.06
  | Acp.Protocol.Ep -> 16.0
  | Acp.Protocol.Opc -> 24.0
  (* The paper stops at 1PC. L1PC removes 1PC's two log forces, and in
     this disk-bound regime the figure is set by the shared spindle, so
     the published 1PC number is the reference its series is read
     against (the measured column shows the actual gap). *)
  | Acp.Protocol.Lp1 -> 24.0

let fig6_config =
  {
    Opc_cluster.Config.default with
    servers = 4;
    placement = Mds.Placement.Spread;
    txn_timeout = Simkit.Time.span_s 120;
    record_trace = false;
  }

let mean_span spans =
  match spans with
  | [] -> Simkit.Time.zero_span
  | _ ->
      let total =
        List.fold_left
          (fun acc s -> acc + Simkit.Time.span_to_ns s)
          0 spans
      in
      Simkit.Time.span_ns (total / List.length spans)

let run_fig6_point ?(config = fig6_config) ?(count = 100) protocol =
  let config = { config with Opc_cluster.Config.protocol } in
  let cluster = Opc_cluster.Cluster.create config in
  let dir =
    Opc_cluster.Cluster.add_directory cluster
      ~parent:(Opc_cluster.Cluster.root cluster)
      ~name:"data" ~server:0 ()
  in
  let wl = Workload.storm cluster ~dir ~count () in
  (match Opc_cluster.Cluster.settle ~deadline:(Simkit.Time.span_s 3600) cluster with
  | Opc_cluster.Cluster.Quiescent -> ()
  | Opc_cluster.Cluster.Deadline_exceeded ->
      failwith "fig6: cluster did not settle before the deadline"
  | Opc_cluster.Cluster.Stuck -> failwith "fig6: cluster is stuck");
  let stats = Workload.stats wl in
  {
    protocol;
    throughput = Workload.throughput_per_s stats;
    committed = stats.Workload.committed;
    aborted = stats.Workload.aborted;
    mean_latency =
      Metrics.Histogram.mean (Opc_cluster.Cluster.latency_committed cluster);
    mean_lock_hold =
      mean_span
        (Opc_cluster.Cluster.all_mark_spans cluster ~from_:"locked"
           ~to_:"released");
  }

let run_fig6 ?config ?count () =
  List.map (fun k -> run_fig6_point ?config ?count k) Acp.Protocol.all

type measured_costs = {
  kind : Acp.Protocol.kind;
  sync_writes_per_txn : float;
  async_writes_per_txn : float;
  acp_messages_per_txn : float;
}

let run_table1_measured ?(config = fig6_config) ?(count = 20) protocol =
  let config = { config with Opc_cluster.Config.protocol } in
  let cluster = Opc_cluster.Cluster.create config in
  let dir =
    Opc_cluster.Cluster.add_directory cluster
      ~parent:(Opc_cluster.Cluster.root cluster)
      ~name:"data" ~server:0 ()
  in
  (* Warm-up: one transaction outside the measurement window. *)
  Opc_cluster.Cluster.submit cluster
    (Mds.Op.create_file ~parent:dir ~name:"warmup")
    ~on_done:(fun _ -> ());
  (match Opc_cluster.Cluster.settle cluster with
  | Opc_cluster.Cluster.Quiescent -> ()
  | _ -> failwith "table1: warm-up did not settle");
  let before =
    Metrics.Ledger.snapshot (Opc_cluster.Cluster.ledger cluster)
  in
  (* One at a time, so per-transaction division is exact. *)
  let rec one i =
    if i < count then
      Opc_cluster.Cluster.submit cluster
        (Mds.Op.create_file ~parent:dir ~name:(Printf.sprintf "t1_%d" i))
        ~on_done:(fun outcome ->
          match outcome with
          | Acp.Txn.Committed -> one (i + 1)
          | Acp.Txn.Aborted reason ->
              failwith ("table1: unexpected abort: " ^ reason))
  in
  one 0;
  (match Opc_cluster.Cluster.settle cluster with
  | Opc_cluster.Cluster.Quiescent -> ()
  | _ -> failwith "table1: run did not settle");
  let diff =
    Metrics.Ledger.diff ~after:(Opc_cluster.Cluster.ledger cluster) ~before
  in
  let get k = match List.assoc_opt k diff with Some v -> v | None -> 0 in
  let per k = float_of_int (get k) /. float_of_int count in
  {
    kind = protocol;
    sync_writes_per_txn = per "log.sync";
    async_writes_per_txn = per "log.async";
    acp_messages_per_txn = per "msg.acp";
  }

type breakdown_point = {
  kind : Acp.Protocol.kind;
  summary : Obs.Breakdown.summary;
  tracer : Obs.Tracer.t;
}

let run_breakdown ?(config = fig6_config) ?(count = 20) protocol =
  let config =
    { config with Opc_cluster.Config.protocol; record_spans = true }
  in
  let cluster = Opc_cluster.Cluster.create config in
  let dir =
    Opc_cluster.Cluster.add_directory cluster
      ~parent:(Opc_cluster.Cluster.root cluster)
      ~name:"data" ~server:0 ()
  in
  (* Warm-up: one transaction outside the measurement window. *)
  Opc_cluster.Cluster.submit cluster
    (Mds.Op.create_file ~parent:dir ~name:"warmup")
    ~on_done:(fun _ -> ());
  (match Opc_cluster.Cluster.settle cluster with
  | Opc_cluster.Cluster.Quiescent -> ()
  | _ -> failwith "breakdown: warm-up did not settle");
  let since = Opc_cluster.Cluster.now cluster in
  (* Fully isolated transactions: settle (not just reply) between
     submissions, so no trailing work of one transaction — post-reply
     commit forces, asynchronous appends — occupies the shared device
     when the next one starts. Table I's critical-path counts describe
     exactly this regime; back-to-back pipelining would put a
     neighbour's queueing on the measured path. *)
  for i = 0 to count - 1 do
    Opc_cluster.Cluster.submit cluster
      (Mds.Op.create_file ~parent:dir ~name:(Printf.sprintf "bd_%d" i))
      ~on_done:(fun outcome ->
        match outcome with
        | Acp.Txn.Committed -> ()
        | Acp.Txn.Aborted reason ->
            failwith ("breakdown: unexpected abort: " ^ reason));
    match Opc_cluster.Cluster.settle cluster with
    | Opc_cluster.Cluster.Quiescent -> ()
    | _ -> failwith "breakdown: run did not settle"
  done;
  let tracer = Opc_cluster.Cluster.obs cluster in
  let paths = Obs.Breakdown.paths ~since tracer in
  { kind = protocol; summary = Obs.Breakdown.summarize paths; tracer }

(* The canonical worker-side rejection: deleting a directory whose
   entry lives on the coordinator but whose (non-empty) inode lives on
   the worker. Planning succeeds — only the worker's Unref can see the
   children — so the abort happens inside the protocol, where Table-I
   style accounting applies. *)
let run_abort_measured ?(config = fig6_config) ?(count = 20) protocol =
  let config = { config with Opc_cluster.Config.protocol } in
  let cluster = Opc_cluster.Cluster.create config in
  let root = Opc_cluster.Cluster.root cluster in
  let dir =
    Opc_cluster.Cluster.add_directory cluster ~parent:root ~name:"data"
      ~server:0 ()
  in
  let sub =
    Opc_cluster.Cluster.add_directory cluster ~parent:dir ~name:"sub"
      ~server:1 ()
  in
  let _child =
    Opc_cluster.Cluster.add_directory cluster ~parent:sub ~name:"child" ()
  in
  let delete_sub ~k =
    Opc_cluster.Cluster.submit cluster
      (Mds.Op.delete ~parent:dir ~name:"sub")
      ~on_done:(fun outcome ->
        match outcome with
        | Acp.Txn.Aborted _ -> k ()
        | Acp.Txn.Committed -> failwith "abort experiment: unexpected commit")
  in
  (* Warm-up outside the measurement window. *)
  delete_sub ~k:(fun () -> ());
  (match Opc_cluster.Cluster.settle cluster with
  | Opc_cluster.Cluster.Quiescent -> ()
  | _ -> failwith "abort run: warm-up did not settle");
  let before =
    Metrics.Ledger.snapshot (Opc_cluster.Cluster.ledger cluster)
  in
  let rec one i = if i < count then delete_sub ~k:(fun () -> one (i + 1)) in
  one 0;
  (match Opc_cluster.Cluster.settle cluster with
  | Opc_cluster.Cluster.Quiescent -> ()
  | _ -> failwith "abort run: did not settle");
  let diff =
    Metrics.Ledger.diff ~after:(Opc_cluster.Cluster.ledger cluster) ~before
  in
  let get k = match List.assoc_opt k diff with Some v -> v | None -> 0 in
  let per k = float_of_int (get k) /. float_of_int count in
  {
    kind = protocol;
    sync_writes_per_txn = per "log.sync";
    async_writes_per_txn = per "log.async";
    acp_messages_per_txn = per "msg.acp";
  }

type sweep_point = { x : float; series : (Acp.Protocol.kind * float) list }

let sweep ~xs ~config_of ?(count = 100) () =
  List.map
    (fun x ->
      let series =
        List.map
          (fun kind ->
            let p = run_fig6_point ~config:(config_of x) ~count kind in
            (kind, p.throughput))
          Acp.Protocol.all
      in
      { x; series })
    xs

let sweep_disk_bandwidth
    ?(bandwidths = [ 100; 200; 400; 800; 1600; 3200; 6400 ]) ?count () =
  let config_of kbps =
    {
      fig6_config with
      Opc_cluster.Config.san =
        {
          fig6_config.Opc_cluster.Config.san with
          Storage.San.disk =
            {
              fig6_config.Opc_cluster.Config.san.Storage.San.disk with
              Storage.Disk.bandwidth_bytes_per_s = kbps * 1000;
            };
        };
    }
  in
  sweep
    ~xs:(List.map float_of_int bandwidths)
    ~config_of:(fun x -> config_of (int_of_float x))
    ?count ()

let sweep_network_latency
    ?(latencies_us = [ 10; 50; 100; 500; 1000; 5000; 10000 ]) ?count () =
  let config_of us =
    {
      fig6_config with
      Opc_cluster.Config.network =
        {
          fig6_config.Opc_cluster.Config.network with
          Netsim.Network.latency = Simkit.Time.span_us us;
        };
    }
  in
  sweep
    ~xs:(List.map float_of_int latencies_us)
    ~config_of:(fun x -> config_of (int_of_float x))
    ?count ()

let sweep_concurrency ?(counts = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ])
    () =
  List.map
    (fun count ->
      let series =
        List.map
          (fun kind ->
            let p = run_fig6_point ~config:fig6_config ~count kind in
            (kind, p.throughput))
          Acp.Protocol.all
      in
      { x = float_of_int count; series })
    counts

let sweep_colocation ?(probabilities = [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ])
    ?count () =
  let config_of p =
    { fig6_config with Opc_cluster.Config.placement = Mds.Placement.Colocate p }
  in
  sweep ~xs:probabilities ~config_of ?count ()

let run_batched_point ?(config = fig6_config) ?(count = 100) ~batch protocol =
  let config = { config with Opc_cluster.Config.protocol } in
  let cluster = Opc_cluster.Cluster.create config in
  let dir =
    Opc_cluster.Cluster.add_directory cluster
      ~parent:(Opc_cluster.Cluster.root cluster)
      ~name:"data" ~server:0 ()
  in
  let batcher =
    Opc_cluster.Batching.create cluster ~window:(Simkit.Time.span_ms 1)
      ~max_batch:batch
  in
  let committed = ref 0 and aborted = ref 0 in
  let first = Opc_cluster.Cluster.now cluster in
  let last = ref first in
  for i = 0 to count - 1 do
    Opc_cluster.Batching.submit batcher
      (Mds.Op.create_file ~parent:dir ~name:(Printf.sprintf "b%d" i))
      ~on_done:(fun outcome ->
        last := Opc_cluster.Cluster.now cluster;
        match outcome with
        | Acp.Txn.Committed -> incr committed
        | Acp.Txn.Aborted _ -> incr aborted)
  done;
  Opc_cluster.Batching.flush_all batcher;
  (match
     Opc_cluster.Cluster.settle ~deadline:(Simkit.Time.span_s 3600) cluster
   with
  | Opc_cluster.Cluster.Quiescent -> ()
  | _ -> failwith "batched storm did not settle");
  let span = Simkit.Time.span_to_float_s (Simkit.Time.diff !last first) in
  {
    protocol;
    throughput =
      (if span > 0.0 then float_of_int !committed /. span else 0.0);
    committed = !committed;
    aborted = !aborted;
    mean_latency =
      Metrics.Histogram.mean (Opc_cluster.Cluster.latency_committed cluster);
    mean_lock_hold =
      mean_span
        (Opc_cluster.Cluster.all_mark_spans cluster ~from_:"locked"
           ~to_:"released");
  }

let run_multi_dir_point ~config ~count ~dirs:dir_count protocol =
  let config = { config with Opc_cluster.Config.protocol } in
  let cluster = Opc_cluster.Cluster.create config in
  let root = Opc_cluster.Cluster.root cluster in
  let dirs =
    Array.init dir_count (fun i ->
        Opc_cluster.Cluster.add_directory cluster ~parent:root
          ~name:(Printf.sprintf "data%d" i)
          ~server:(i mod config.Opc_cluster.Config.servers)
          ())
  in
  let committed = ref 0 in
  let first = Opc_cluster.Cluster.now cluster in
  let last = ref first in
  for i = 0 to count - 1 do
    Opc_cluster.Cluster.submit cluster
      (Mds.Op.create_file
         ~parent:dirs.(i mod dir_count)
         ~name:(Printf.sprintf "f%d" i))
      ~on_done:(fun outcome ->
        last := Opc_cluster.Cluster.now cluster;
        match outcome with
        | Acp.Txn.Committed -> incr committed
        | Acp.Txn.Aborted _ -> ())
  done;
  (match
     Opc_cluster.Cluster.settle ~deadline:(Simkit.Time.span_s 3600) cluster
   with
  | Opc_cluster.Cluster.Quiescent -> ()
  | _ -> failwith "multi-dir storm did not settle");
  let span = Simkit.Time.span_to_float_s (Simkit.Time.diff !last first) in
  if span > 0.0 then float_of_int !committed /. span else 0.0

let sweep_directories ?(dir_counts = [ 1; 2; 4 ]) ?(count = 100)
    ?(independent_disks = false) () =
  let config =
    if independent_disks then
      {
        fig6_config with
        Opc_cluster.Config.san =
          {
            fig6_config.Opc_cluster.Config.san with
            Storage.San.shared_device = false;
          };
      }
    else fig6_config
  in
  List.map
    (fun dirs ->
      let series =
        List.map
          (fun kind -> (kind, run_multi_dir_point ~config ~count ~dirs kind))
          Acp.Protocol.all
      in
      { x = float_of_int dirs; series })
    dir_counts

let compare_group_commit ?(count = 100) () =
  let grouped_config =
    {
      fig6_config with
      Opc_cluster.Config.san =
        { fig6_config.Opc_cluster.Config.san with Storage.San.group_commit = true };
    }
  in
  List.map
    (fun kind ->
      let plain = (run_fig6_point ~count kind).throughput in
      let grouped =
        (run_fig6_point ~config:grouped_config ~count kind).throughput
      in
      (kind, plain, grouped))
    Acp.Protocol.all

let compare_shared_vs_independent ?(count = 100) () =
  let independent_config =
    {
      fig6_config with
      Opc_cluster.Config.san =
        { fig6_config.Opc_cluster.Config.san with Storage.San.shared_device = false };
    }
  in
  List.map
    (fun kind ->
      let shared = (run_fig6_point ~count kind).throughput in
      let independent =
        (run_fig6_point ~config:independent_config ~count kind).throughput
      in
      (kind, shared, independent))
    Acp.Protocol.all

(* ------------------------------------------------------------------ *)
(* Scale campaign                                                      *)
(* ------------------------------------------------------------------ *)

type scale_point = {
  protocol : Acp.Protocol.kind;
  servers : int;
  submitted : int;
  committed : int;
  aborted : int;
  events : int;
  sim_elapsed : Simkit.Time.span;
  ops_per_s : float;
  latency_p50 : Simkit.Time.span;
  latency_p95 : Simkit.Time.span;
  latency_p99 : Simkit.Time.span;
  profile : Obs.Prof.report option;
}

let scale_config ~servers ~seed =
  {
    fig6_config with
    Opc_cluster.Config.servers;
    seed;
    txn_timeout = Simkit.Time.span_s 60;
    (* One log device per server: the sharded-store regime where
       coordinator count is the scaling axis, not a single spindle. *)
    san =
      {
        fig6_config.Opc_cluster.Config.san with
        Storage.San.shared_device = false;
      };
  }

let run_scale_point ?config ?(clients_per_server = 2) ~servers ~txns ~seed
    protocol =
  let config =
    match config with
    | Some c -> { c with Opc_cluster.Config.protocol; servers; seed }
    | None ->
        { (scale_config ~servers ~seed) with Opc_cluster.Config.protocol }
  in
  let cluster = Opc_cluster.Cluster.create config in
  let root = Opc_cluster.Cluster.root cluster in
  let dirs =
    Array.init servers (fun i ->
        Opc_cluster.Cluster.add_directory cluster ~parent:root
          ~name:(Printf.sprintf "scale%d" i)
          ~server:i ())
  in
  let clients = clients_per_server * servers in
  let ops_per_client = max 1 (txns / clients) in
  let rng = Simkit.Rng.create ~seed in
  (* Create/delete only (renames can deadlock and stall on the lock
     timeout — noise, not throughput) over uniformly chosen directories:
     every server coordinates an equal share. *)
  let mix =
    {
      Workload.create_weight = 70;
      delete_weight = 25;
      rename_weight = 0;
      lookup_weight = 5;
    }
  in
  let wl =
    Workload.closed_loop cluster ~dirs ~clients ~ops_per_client ~mix
      ~zipf_s:0.0 ~rng ()
  in
  (match
     Opc_cluster.Cluster.settle ~deadline:(Simkit.Time.span_s 86_400) cluster
   with
  | Opc_cluster.Cluster.Quiescent -> ()
  | Opc_cluster.Cluster.Deadline_exceeded ->
      failwith "scale: cluster did not settle before the deadline"
  | Opc_cluster.Cluster.Stuck -> failwith "scale: cluster is stuck");
  let stats = Workload.stats wl in
  let sim_elapsed =
    Simkit.Time.diff stats.Workload.last_reply stats.Workload.first_submit
  in
  let p50, p95, p99 =
    match
      Metrics.Histogram.quantiles
        (Opc_cluster.Cluster.latency_committed cluster)
        [ 0.50; 0.95; 0.99 ]
    with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  {
    protocol;
    servers;
    submitted = stats.Workload.submitted;
    committed = stats.Workload.committed;
    aborted = stats.Workload.aborted;
    events = Simkit.Engine.dispatched (Opc_cluster.Cluster.engine cluster);
    sim_elapsed;
    ops_per_s = Workload.throughput_per_s stats;
    latency_p50 = p50;
    latency_p95 = p95;
    latency_p99 = p99;
    profile =
      (let prof = Opc_cluster.Cluster.prof cluster in
       if Obs.Prof.is_recording prof then Some (Obs.Prof.report prof)
       else None);
  }

let sweep_batching ?(batch_sizes = [ 1; 2; 4; 8; 16; 32 ]) ?(count = 100) () =
  List.map
    (fun batch ->
      let series =
        List.map
          (fun kind ->
            let p = run_batched_point ~count ~batch kind in
            (kind, p.throughput))
          Acp.Protocol.all
      in
      { x = float_of_int batch; series })
    batch_sizes

(* ------------------------------------------------------------------ *)
(* Recovery timeline                                                   *)
(* ------------------------------------------------------------------ *)

type timeline_point = {
  kind : Acp.Protocol.kind;
  committed : int;
  aborted : int;
  crash_server : int;
  crash_time : Simkit.Time.t;
  journal : Obs.Journal.entry list;
  series : Obs.Timeseries.t;
  windows : Obs.Mttr.window list;
}

let timeline_config =
  {
    fig6_config with
    Opc_cluster.Config.txn_timeout = Simkit.Time.span_ms 300;
    heartbeat_interval = Simkit.Time.span_ms 20;
    detector_timeout = Simkit.Time.span_ms 100;
    restart_delay = Simkit.Time.span_ms 50;
    auto_restart = true;
    record_journal = true;
    sample_period = Some (Simkit.Time.span_ms 5);
  }

let run_timeline ?(config = timeline_config) ?(seed = 1) ?(crash_server = 1)
    ?(crash_at_ms = 100) protocol =
  let config = { config with Opc_cluster.Config.protocol; seed } in
  let cluster = Opc_cluster.Cluster.create config in
  let root = Opc_cluster.Cluster.root cluster in
  let servers = config.Opc_cluster.Config.servers in
  let dirs =
    Array.init servers (fun i ->
        Opc_cluster.Cluster.add_directory cluster ~parent:root
          ~name:(Printf.sprintf "d%d" i) ~server:i ())
  in
  (* Same stream derivation as the chaos runner, so a timeline run with
     the chaos defaults reproduces a chaos run's workload exactly. *)
  ignore
    (Workload.closed_loop cluster ~dirs ~clients:6 ~ops_per_client:15
       ~mix:Chaos.Runner.chaos_mix
       ~rng:(Simkit.Rng.create ~seed:(seed + 1_000_003))
       ());
  let crash_time =
    Simkit.Time.add
      (Opc_cluster.Cluster.now cluster)
      (Simkit.Time.span_ms crash_at_ms)
  in
  Opc_cluster.Fault.inject cluster
    [ Opc_cluster.Fault.Crash { server = crash_server; at = crash_time } ];
  Opc_cluster.Cluster.run_for cluster (Simkit.Time.span_ms 600);
  (match
     Opc_cluster.Cluster.settle ~deadline:(Simkit.Time.span_s 120) cluster
   with
  | Opc_cluster.Cluster.Quiescent -> ()
  | Opc_cluster.Cluster.Deadline_exceeded ->
      failwith "timeline: cluster did not settle before the deadline"
  | Opc_cluster.Cluster.Stuck -> failwith "timeline: cluster is stuck");
  let committed, aborted = Opc_cluster.Cluster.txn_counts cluster in
  let journal = Obs.Journal.entries (Opc_cluster.Cluster.journal cluster) in
  {
    kind = protocol;
    committed;
    aborted;
    crash_server;
    crash_time;
    journal;
    series = Opc_cluster.Cluster.timeseries cluster;
    windows = Obs.Mttr.windows journal;
  }
