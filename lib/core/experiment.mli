(** Reproduction runners for the paper's evaluation (§IV).

    Each function builds a fresh cluster, drives the paper's workload and
    returns the measured series; the benchmark harness prints them next
    to the published numbers. Everything is deterministic given the
    configuration's seed. *)

(** {1 Figure 6 — distributed namespace operations per second} *)

type fig6_point = {
  protocol : Acp.Protocol.kind;
  throughput : float;  (** committed distributed operations per second *)
  committed : int;
  aborted : int;
  mean_latency : Simkit.Time.span;
  mean_lock_hold : Simkit.Time.span;
      (** coordinator-side lock hold (locked -> released), averaged *)
}

val paper_fig6 : Acp.Protocol.kind -> float
(** The published series: PrN 15, PrC 15.06, EP 16, 1PC 24 ops/s.
    L1PC is not in the paper; it reuses the 1PC figure as its closest
    published reference point. *)

val fig6_config : Opc_cluster.Config.t
(** The §IV parameters: 1 µs methods, 100 µs network, 400 KB/s disk,
    [Spread] placement (every operation distributed), plus this
    reproduction's calibrated record sizing (see EXPERIMENTS.md). *)

val run_fig6_point :
  ?config:Opc_cluster.Config.t -> ?count:int -> Acp.Protocol.kind ->
  fig6_point
(** One bar of Figure 6: [count] (default 100) concurrent CREATEs in the
    same directory, coordinated by the directory's server. *)

val run_fig6 :
  ?config:Opc_cluster.Config.t -> ?count:int -> unit -> fig6_point list
(** All five protocols. *)

(** {1 Table I — protocol cost accounting} *)

type measured_costs = {
  kind : Acp.Protocol.kind;
  sync_writes_per_txn : float;
  async_writes_per_txn : float;
  acp_messages_per_txn : float;
}

val run_table1_measured :
  ?config:Opc_cluster.Config.t -> ?count:int -> Acp.Protocol.kind ->
  measured_costs
(** Run [count] (default 20) isolated distributed CREATEs (one at a
    time, so no batching blurs the accounting) and average the ledger's
    write/message counters per transaction. The totals must equal the
    analytic {!Acp.Cost_model.failure_free} columns — the test suite
    asserts it. *)

(** {1 Latency decomposition (critical-path breakdown)} *)

type breakdown_point = {
  kind : Acp.Protocol.kind;
  summary : Obs.Breakdown.summary;
  tracer : Obs.Tracer.t;
      (** the run's full span record, for Chrome-trace export *)
}

val run_breakdown :
  ?config:Opc_cluster.Config.t -> ?count:int -> Acp.Protocol.kind ->
  breakdown_point
(** Run [count] (default 20) isolated distributed CREATEs with span
    recording on and decompose each submit->reply window into the
    paper's critical-path categories ({!Obs.Breakdown}). In this
    one-at-a-time regime the walk's force and message counts must equal
    the critical-path columns of {!Acp.Cost_model.paper_table1} — the
    test suite asserts it for every protocol. *)

val run_abort_measured :
  ?config:Opc_cluster.Config.t -> ?count:int -> Acp.Protocol.kind ->
  measured_costs
(** Same accounting for the canonical abort: each measured CREATE
    collides with an existing name at the worker, which votes NO. Must
    equal {!Acp.Cost_model.worker_rejected} (the §II-D claim that PrC
    aborts cost exactly what PrN aborts cost is a test). *)

(** {1 Sweeps (ablation experiments)} *)

type sweep_point = { x : float; series : (Acp.Protocol.kind * float) list }

val sweep_disk_bandwidth :
  ?bandwidths:int list -> ?count:int -> unit -> sweep_point list
(** Figure-6 throughput as the shared disk speeds up;
    [x] = bandwidth in KB/s. *)

val sweep_network_latency :
  ?latencies_us:int list -> ?count:int -> unit -> sweep_point list

val sweep_concurrency : ?counts:int list -> unit -> sweep_point list
(** [x] = offered concurrent operations. *)

val sweep_colocation :
  ?probabilities:float list -> ?count:int -> unit -> sweep_point list
(** Locality ablation: probability that a file lands on its parent's
    server (0 = every operation distributed, as in Figure 6). *)

val run_batched_point :
  ?config:Opc_cluster.Config.t ->
  ?count:int ->
  batch:int ->
  Acp.Protocol.kind ->
  fig6_point
(** Figure-6 workload submitted through the §VI aggregation layer with
    batches of up to [batch] operations ([batch = 1] disables
    batching). *)

val sweep_batching :
  ?batch_sizes:int list -> ?count:int -> unit -> sweep_point list
(** Throughput vs batch size (the paper's future-work claim: aggregation
    amortizes log writes over blocks of requests). *)

val sweep_directories :
  ?dir_counts:int list -> ?count:int -> ?independent_disks:bool -> unit ->
  sweep_point list
(** Coordinator-scaling ablation: the 100-CREATE burst spread evenly
    over [x] directories, each owned by a different server. On the
    paper's shared device, adding coordinators barely helps — the single
    400 KB/s spindle is the global bottleneck; with
    [independent_disks = true] throughput scales with the directory
    count. *)

val compare_group_commit :
  ?count:int -> unit -> (Acp.Protocol.kind * float * float) list
(** Log-manager ablation: Figure-6 throughput without and with WAL
    group commit (many forces coalesced into one transfer while the
    device is busy). Returns (protocol, plain, grouped). Every protocol
    gains; 1PC gains the most — its single lock-held force per
    transaction coalesces across the whole burst, whereas the 2PC
    family's voting round trips keep interrupting the batchable
    windows. *)

(** {1 Scale campaign} *)

type scale_point = {
  protocol : Acp.Protocol.kind;
  servers : int;
  submitted : int;
  committed : int;
  aborted : int;
  events : int;  (** engine dispatches consumed by the whole run *)
  sim_elapsed : Simkit.Time.span;  (** first submit -> last reply *)
  ops_per_s : float;  (** committed operations per simulated second *)
  latency_p50 : Simkit.Time.span;
  latency_p95 : Simkit.Time.span;
  latency_p99 : Simkit.Time.span;
  profile : Obs.Prof.report option;
      (** host CPU/allocation attribution when the run's configuration
          sets [record_prof]; [None] otherwise. The report window spans
          cluster assembly through settle. *)
}

val scale_config : servers:int -> seed:int -> Opc_cluster.Config.t
(** The campaign's base configuration: {!fig6_config} with one log
    device per server ([San.shared_device = false]) and a 60 s
    transaction timeout. [bench check] re-derives its smoke point from
    this, so a baseline and its re-measurement share every parameter. *)

val run_scale_point :
  ?config:Opc_cluster.Config.t ->
  ?clients_per_server:int ->
  servers:int ->
  txns:int ->
  seed:int ->
  Acp.Protocol.kind ->
  scale_point
(** One point of the scale campaign: [servers] metadata servers with one
    log device each ([San.shared_device = false] — the sharded-store
    regime), one workload directory per server, and a seeded closed-loop
    create/delete/lookup mix of [clients_per_server] (default 2) clients
    per server issuing [txns / clients] operations each. Deterministic
    given [(servers, txns, seed, protocol)]. Host wall-clock and
    events/sec are the caller's to measure — this returns the simulated
    metrics and the engine's dispatch count. [config] (default
    {!scale_config}) overrides the base configuration — [protocol],
    [servers] and [seed] are reapplied on top — e.g. to turn sampling or
    the journal on for an overhead experiment. *)

(** {1 Recovery timeline — journal, gauges and MTTR for one crash} *)

type timeline_point = {
  kind : Acp.Protocol.kind;
  committed : int;
  aborted : int;
  crash_server : int;
  crash_time : Simkit.Time.t;  (** the injected crash instant *)
  journal : Obs.Journal.entry list;
  series : Obs.Timeseries.t;
      (** per-node and cluster gauges sampled every [sample_period] *)
  windows : Obs.Mttr.window list;
      (** closed unavailability windows decomposed into
          detect/fence/scan/resolve *)
}

val timeline_config : Opc_cluster.Config.t
(** {!fig6_config} with the chaos harness's failure-handling parameters
    (300 ms transaction timeout, 20 ms heartbeats, 100 ms detector,
    50 ms restart delay, auto-restart), the lifecycle journal on, and a
    5 ms gauge sampling cadence. *)

val run_timeline :
  ?config:Opc_cluster.Config.t ->
  ?seed:int ->
  ?crash_server:int ->
  ?crash_at_ms:int ->
  Acp.Protocol.kind ->
  timeline_point
(** Drive the chaos workload (6 clients x 15 operations of
    {!Chaos.Runner.chaos_mix}, stream seeded exactly as the chaos runner
    seeds it) while [crash_server] (default 1) crashes [crash_at_ms]
    (default 100) after the workload starts, then run the fault window
    out and settle. The returned journal, gauge series and MTTR windows
    are what [bench timeline] renders and exports. Deterministic given
    [(config, seed, crash_server, crash_at_ms, protocol)]. *)

val compare_shared_vs_independent :
  ?count:int -> unit -> (Acp.Protocol.kind * float * float) list
(** Architecture ablation: Figure-6 throughput on the paper's single
    shared device vs one equally fast device per server
    ([San.shared_device = false]). Returns (protocol, shared,
    independent). With private devices the coordinator's and worker's
    forces overlap and every protocol speeds up; 1PC's client-visible
    burst rate gains the most because its only lock-held force gets a
    dedicated device and its coordinator-side commits drain off the
    client path. *)
