(** Recovery drills: crash-and-recover campaigns with MTTR SLOs.

    A drill crashes one server under the chaos workload, waits for the
    cluster to settle, and measures the unavailability window's
    {!Obs.Mttr} decomposition (detect / fence / scan / resolve). A
    campaign repeats this across seeds and aggregates per-segment
    percentiles; {!check} compares them against the per-protocol
    recovery SLOs committed in {!slo_for} — the gate [bench drill]
    enforces in CI.

    The SLOs encode the protocols' structural recovery differences:
    L1PC is logless, so its fence budget is {e zero} — any SAN fencing
    during an L1PC drill is a regression — while the logged protocols
    carry a detect+fence+scan budget dominated by the failure detector
    and the log-partition scan. *)

type status = {
  committed : int;
  aborted : int;
  serving : int;  (** nodes up *)
}

type run = {
  seed : int;
  crash_server : int;
  servers : int;
  before : status;  (** sampled at the crash instant, pre-crash *)
  after : status;  (** after the cluster settled *)
  windows : Obs.Mttr.window list;
}

type segment = { p50_ns : int; p99_ns : int }
(** Nearest-rank percentiles over a campaign's windows, in ns. *)

type stats = {
  protocol : Acp.Protocol.kind;
  runs : run list;
  windows : int;  (** measured (closed) unavailability windows *)
  detect : segment;
  fence : segment;
  scan : segment;
  resolve : segment;
  total : segment;
  dfs_p99_ns : int;
      (** p99 of per-window detect+fence+scan — time to reach the
          point where the survivor can serve the victim's partition *)
}

type slo = {
  fence_p99_ns : int;  (** 0 for L1PC: logless recovery never fences *)
  dfs_p99_ns : int;
  total_p99_ns : int;
}

val slo_for : Acp.Protocol.kind -> slo
(** The committed per-protocol recovery budgets (see EXPERIMENTS.md,
    "Recovery drills & incident autopsy"). *)

val impossible_slo : slo
(** An unmeetable budget (every field 0) — the CI negative test proving
    the gate actually trips. *)

val run_one : ?seed:int -> ?crash_server:int -> Acp.Protocol.kind -> run
(** One drill under {!Experiment.timeline_config} with a 300 ms restart
    delay — long enough that the 100 ms detector sweep fires and the
    survivor walks the whole takeover path (suspect, fence, scan)
    instead of the victim outracing detection as in the timeline
    experiment. The chaos workload runs throughout; [crash_server]
    (default 1) is crashed 100 ms in, then the cluster is run out and
    settled. Deterministic given [(protocol, seed, crash_server)].
    @raise Failure if the cluster fails to settle — a drill that cannot
    recover is itself an incident. *)

val campaign : ?seeds:int -> ?first_seed:int -> Acp.Protocol.kind -> stats
(** [seeds] (default 5) drills, seeded [first_seed] (default 1)
    onwards, aggregated into per-segment percentiles. *)

val check : ?slo:slo -> stats -> string list
(** Failure messages ([[]] = pass) against [slo] (default
    {!slo_for}): every segment budget, plus structural checks — at
    least one window per run, full service before the crash and after
    recovery. Messages contain the phrase ["FAILS recovery SLO"]. *)
