(** Lock manager (§II-B).

    One lock manager serves one metadata server, protecting its metadata
    objects. Transactions acquire locks before updating (two-phase
    locking: all acquires precede all releases) and the commit protocols
    decide when to release — the single behavioural difference the paper
    exploits in 1PC's early coordinator-side release.

    Grants are FIFO per object: a request waits behind every earlier
    incompatible request, so writers cannot starve. Compatible prefixes
    are granted together (multiple shared holders). Re-acquiring a held
    lock in the same or weaker mode grants immediately; a shared holder
    requesting exclusive waits until it is the sole holder and then
    upgrades ahead of later arrivals.

    To avoid distributed deadlocks the paper uses timeouts rather than a
    wait-for graph; [acquire] takes an optional timeout after which the
    request is abandoned and [on_timeout] fires (the protocol then aborts
    the transaction).

    Grant callbacks are deferred through the engine (same simulated
    instant, later event), so callers never re-enter the manager from
    inside their own [acquire]. Lock table operations are free in
    simulated time, matching the paper's model where only object methods,
    messages and log writes carry latency. *)

type t

type mode = Shared | Exclusive

val pp_mode : Format.formatter -> mode -> unit

type stats = {
  acquired : int;  (** grants, excluding re-entrant no-ops *)
  waited : int;  (** grants that had to queue first *)
  timeouts : int;
  total_wait : Simkit.Time.span;  (** summed queue time of all grants *)
  max_queue : int;  (** high-water waiting-queue length on any object *)
}

val create :
  engine:Simkit.Engine.t ->
  ?trace:Simkit.Trace.t ->
  ?obs:Obs.Tracer.t ->
  name:string ->
  unit ->
  t
(** [obs] (default disabled) records one {!Obs.Span.Lock_wait} span per
    request that had to queue, from enqueue to grant, timeout or
    cancellation, keyed by the requesting owner token. Immediate grants
    record nothing — they cost nothing. *)

val acquire :
  t ->
  owner:int ->
  oid:int ->
  mode:mode ->
  ?timeout:Simkit.Time.span ->
  on_grant:(unit -> unit) ->
  ?on_timeout:(unit -> unit) ->
  unit ->
  unit
(** Request [oid] in [mode] for transaction [owner]. Exactly one of
    [on_grant] / [on_timeout] eventually fires (on_grant possibly at the
    same instant, via a deferred event). A re-entrant request by a holder
    in a compatible mode is granted without counting as a new
    acquisition. *)

val release : t -> owner:int -> oid:int -> unit
(** Drop [owner]'s hold on [oid] (no-op if it holds nothing) and grant
    the next compatible requests. Also cancels any waiting request by
    [owner] on [oid]. *)

val release_all : t -> owner:int -> unit
(** Release every hold and cancel every waiting request of [owner] —
    crash cleanup and end-of-transaction in one call. *)

val holds : t -> owner:int -> oid:int -> mode option
val holders : t -> oid:int -> (int * mode) list
val queue_length : t -> oid:int -> int

val live_waiters : t -> int
(** Total live (not yet granted, timed out or cancelled) waiters across
    every object — the telemetry gauge for lock contention. *)

val stats : t -> stats
