let label_grant = Simkit.Label.v Locks "lock.grant"
let label_reentrant = Simkit.Label.v Locks "lock.reentrant"
let label_timeout = Simkit.Label.v Locks "lock.timeout"

type mode = Shared | Exclusive

let pp_mode ppf = function
  | Shared -> Fmt.string ppf "S"
  | Exclusive -> Fmt.string ppf "X"

let compatible a b =
  match (a, b) with Shared, Shared -> true | _, _ -> false

type waiter = {
  owner : int;
  mode : mode;
  enqueued_at : Simkit.Time.t;
  on_grant : unit -> unit;
  on_timeout : unit -> unit;
  mutable timer : Simkit.Engine.handle option;
  mutable live : bool;  (* false once granted, timed out or cancelled *)
  mutable span : int;  (* open Obs wait span, -1 when none *)
}

type entry = {
  mutable holders : (int * mode) list;  (* newest first *)
  queue : waiter Queue.t;
  (* Number of queue members with [live = true], maintained at every
     enqueue / grant / timeout / cancel. [release_all] scans the whole
     table once per transaction, so the per-entry liveness test must not
     walk the queue. *)
  mutable live_waiters : int;
}

type stats = {
  acquired : int;
  waited : int;
  timeouts : int;
  total_wait : Simkit.Time.span;
  max_queue : int;
}

type t = {
  engine : Simkit.Engine.t;
  trace : Simkit.Trace.t;
  obs : Obs.Tracer.t;
  name : string;
  table : (int, entry) Hashtbl.t;
  mutable acquired : int;
  mutable waited : int;
  mutable timeouts : int;
  mutable total_wait : Simkit.Time.span;
  mutable max_queue : int;
}

let create ~engine ?trace ?obs ~name () =
  let trace =
    match trace with Some t -> t | None -> Simkit.Trace.disabled ()
  in
  let obs = match obs with Some o -> o | None -> Obs.Tracer.disabled () in
  {
    engine;
    trace;
    obs;
    name;
    table = Hashtbl.create 64;
    acquired = 0;
    waited = 0;
    timeouts = 0;
    total_wait = Simkit.Time.zero_span;
    max_queue = 0;
  }

let entry t oid =
  match Hashtbl.find_opt t.table oid with
  | Some e -> e
  | None ->
      let e = { holders = []; queue = Queue.create (); live_waiters = 0 } in
      Hashtbl.replace t.table oid e;
      e

let live_queue_length e = e.live_waiters

(* An entry with no holders and no live waiters is indistinguishable
   from an absent one ([entry] recreates exactly this state), so drop it
   from the table. Without pruning the table accumulates one entry per
   oid ever locked, and [release_all] — which runs once per transaction
   — degrades to a scan over every file ever created. Dead waiters
   still parked in [e.queue] are inert: their timers no-op on
   [w.live = false]. *)
let prune t oid e =
  if e.holders = [] && e.live_waiters = 0 then Hashtbl.remove t.table oid

(* A waiter can be granted when every current holder is compatible —
   except that a holder upgrading Shared -> Exclusive only needs to be the
   sole holder. *)
let grantable e w =
  let self = List.mem_assoc w.owner e.holders in
  match (self, w.mode) with
  | true, Exclusive ->
      (* Sole holder: every hold belongs to the upgrader. *)
      List.for_all (fun (o, _) -> o = w.owner) e.holders
  | true, Shared -> true
  | false, m -> List.for_all (fun (_, hm) -> compatible m hm) e.holders

let record_grant t w =
  t.acquired <- t.acquired + 1;
  let now = Simkit.Engine.now t.engine in
  let wait = Simkit.Time.diff now w.enqueued_at in
  if Simkit.Time.span_to_ns wait > 0 then begin
    t.waited <- t.waited + 1;
    t.total_wait <- Simkit.Time.add_span t.total_wait wait
  end

let set_holder e ~owner ~mode =
  e.holders <- (owner, mode) :: List.remove_assoc owner e.holders

let grant t oid e w =
  w.live <- false;
  Obs.Tracer.finish t.obs ~time:(Simkit.Engine.now t.engine) w.span;
  (match w.timer with Some h -> Simkit.Engine.cancel h | None -> ());
  set_holder e ~owner:w.owner ~mode:w.mode;
  record_grant t w;
  if Simkit.Trace.is_recording t.trace then
    Simkit.Trace.emitf t.trace
      ~time:(Simkit.Engine.now t.engine)
      ~source:t.name ~kind:"lock.grant" "txn %d %a oid %d" w.owner pp_mode
      w.mode oid;
  ignore (Simkit.Engine.defer t.engine ~label:label_grant w.on_grant)

(* Grant the longest compatible live prefix of the queue. Upgrades are
   handled naturally: an upgrading waiter at the head is granted as soon
   as the other holders drain. *)
let rec pump t oid e =
  match Queue.peek_opt e.queue with
  | None -> ()
  | Some w when not w.live ->
      ignore (Queue.take e.queue);
      pump t oid e
  | Some w ->
      if grantable e w then begin
        ignore (Queue.take e.queue);
        e.live_waiters <- e.live_waiters - 1;
        grant t oid e w;
        pump t oid e
      end

let acquire t ~owner ~oid ~mode ?timeout ~on_grant
    ?(on_timeout = fun () -> ()) () =
  let e = entry t oid in
  let held = List.assoc_opt owner e.holders in
  match (held, mode) with
  | Some Exclusive, _ | Some Shared, Shared ->
      (* Re-entrant, already strong enough. *)
      ignore (Simkit.Engine.defer t.engine ~label:label_reentrant on_grant)
  | (None | Some Shared), _ ->
      let w =
        {
          owner;
          mode;
          enqueued_at = Simkit.Engine.now t.engine;
          on_grant;
          on_timeout;
          timer = None;
          live = true;
          span = -1;
        }
      in
      let empty_queue = live_queue_length e = 0 in
      if empty_queue && grantable e w then grant t oid e w
      else begin
        w.span <-
          Obs.Tracer.start t.obs ~time:w.enqueued_at ~txn:owner
            ~category:Obs.Span.Lock_wait ~track:t.name ~name:"lock.wait";
        Queue.add w e.queue;
        e.live_waiters <- e.live_waiters + 1;
        let depth = live_queue_length e in
        if depth > t.max_queue then t.max_queue <- depth;
        if Simkit.Trace.is_recording t.trace then
          Simkit.Trace.emitf t.trace
            ~time:(Simkit.Engine.now t.engine)
            ~source:t.name ~kind:"lock.wait" "txn %d %a oid %d (depth %d)"
            owner pp_mode mode oid depth;
        match timeout with
        | None -> ()
        | Some span ->
            let h =
              Simkit.Engine.schedule t.engine ~label:label_timeout
                ~after:span (fun () ->
                  if w.live then begin
                    w.live <- false;
                    e.live_waiters <- e.live_waiters - 1;
                    t.timeouts <- t.timeouts + 1;
                    Obs.Tracer.finish t.obs
                      ~time:(Simkit.Engine.now t.engine)
                      w.span;
                    if Simkit.Trace.is_recording t.trace then
                      Simkit.Trace.emitf t.trace
                        ~time:(Simkit.Engine.now t.engine)
                        ~source:t.name ~kind:"lock.timeout" "txn %d oid %d"
                        owner oid;
                    (* The dead waiter may have been blocking the head. *)
                    pump t oid e;
                    prune t oid e;
                    w.on_timeout ()
                  end)
            in
            w.timer <- Some h
      end

let cancel_waiters t e ~owner =
  if e.live_waiters > 0 then
    Queue.iter
      (fun w ->
        if w.live && w.owner = owner then begin
          w.live <- false;
          e.live_waiters <- e.live_waiters - 1;
          Obs.Tracer.finish t.obs ~time:(Simkit.Engine.now t.engine) w.span;
          match w.timer with
          | Some h -> Simkit.Engine.cancel h
          | None -> ()
        end)
      e.queue

let release t ~owner ~oid =
  match Hashtbl.find_opt t.table oid with
  | None -> ()
  | Some e ->
      let had = List.mem_assoc owner e.holders in
      e.holders <- List.remove_assoc owner e.holders;
      cancel_waiters t e ~owner;
      if had && Simkit.Trace.is_recording t.trace then
        Simkit.Trace.emitf t.trace
          ~time:(Simkit.Engine.now t.engine)
          ~source:t.name ~kind:"lock.release" "txn %d oid %d" owner oid;
      pump t oid e;
      prune t oid e

let release_all t ~owner =
  (* Mutating the table mid-[Hashtbl.iter] is unspecified, so collect
     the entries that went dead and prune them afterwards. *)
  let dead = ref [] in
  Hashtbl.iter
    (fun oid e ->
      if List.mem_assoc owner e.holders || live_queue_length e > 0 then begin
        e.holders <- List.remove_assoc owner e.holders;
        cancel_waiters t e ~owner;
        pump t oid e;
        if e.holders = [] && e.live_waiters = 0 then dead := oid :: !dead
      end)
    t.table;
  List.iter (fun oid -> Hashtbl.remove t.table oid) !dead

let holds t ~owner ~oid =
  match Hashtbl.find_opt t.table oid with
  | None -> None
  | Some e -> List.assoc_opt owner e.holders

let holders t ~oid =
  match Hashtbl.find_opt t.table oid with None -> [] | Some e -> e.holders

let queue_length t ~oid =
  match Hashtbl.find_opt t.table oid with
  | None -> 0
  | Some e -> live_queue_length e

let live_waiters t =
  Hashtbl.fold (fun _ e acc -> acc + e.live_waiters) t.table 0

let stats t =
  {
    acquired = t.acquired;
    waited = t.waited;
    timeouts = t.timeouts;
    total_wait = t.total_wait;
    max_queue = t.max_queue;
  }
