(** Cluster interconnect model.

    The network delivers opaque payloads between registered endpoints with
    a configurable one-way latency (fixed plus optional uniform jitter),
    optional random loss, link partitions, and per-endpoint up/down state
    (a crashed node neither sends nor receives). Per ordered pair of
    endpoints, delivery is FIFO even under jitter, matching a TCP-like
    transport: a message never overtakes an earlier message on the same
    link.

    Delivery is an engine event: the destination's handler runs at
    [send time + latency]. Messages to a down or partitioned destination
    are silently dropped (counted in {!stats}) — exactly the behaviour the
    commit protocols must tolerate. *)

type 'msg envelope = {
  src : Address.t;
  dst : Address.t;
  sent_at : Simkit.Time.t;
  payload : 'msg;
}

type config = {
  latency : Simkit.Time.span;  (** fixed one-way latency *)
  jitter : Simkit.Time.span;  (** uniform extra delay in [0, jitter] *)
  drop_probability : float;  (** independent loss per message, in [0, 1] *)
  duplicate_probability : float;
      (** probability a delivered message arrives twice (back to back on
          the FIFO link) — retransmission artifacts the protocols must
          deduplicate *)
}

val default_config : config
(** 100 µs latency — the paper's simulation parameter — no jitter, no
    loss, no duplication. *)

type 'msg t

(** Message-conservation ledger: per-tag counters over every message
    copy the fabric accepts, classified at the delivery event. The
    books balance exactly per tag at any instant:

    {[ sent = delivered + dup_delivered + dropped + in_flight ]}

    [in_flight] is maintained at the schedule / delivery-callback
    boundaries while the other right-hand terms come from the
    classification branches, so a delivery-side code path that forgets
    to classify breaks the law instead of drifting silently. Send-time
    refusals (source down, partitioned link, random loss) are counted
    as [rejected] and never enter the law. The meter is passive: no
    allocation, no engine interaction, one flag load and one branch per
    [send] when disabled. *)
module Meter : sig
  type t

  val create : tags:int -> t
  (** Counters for tags [0 .. tags-1]; the payload-to-tag map is the
      [tag_of] argument of {!val:create}. *)

  val disabled : unit -> t
  val is_recording : t -> bool

  val tags : t -> int

  val sent : t -> int -> int
  (** Copies accepted for transmission (a duplicated message counts
      twice — the fabric really carries two copies). *)

  val delivered : t -> int -> int
  (** Primary copies handed to the destination endpoint. *)

  val dup_delivered : t -> int -> int
  (** Duplicate copies handed to the destination endpoint (the
      receiver's dedup logic suppresses them above this layer). *)

  val dropped : t -> int -> int
  (** Copies dropped in flight: destination down or link partitioned at
      the delivery instant. *)

  val rejected : t -> int -> int
  (** Messages refused at send time, before entering the fabric. *)

  val in_flight : t -> int -> int
  (** Copies accepted but not yet classified at a delivery event. *)

  val imbalance : t -> int -> int
  (** [sent - (delivered + dup_delivered + dropped + in_flight)] for
      one tag; [0] iff the tag's books balance. *)

  val check : t -> (int * int) list
  (** All [(tag, imbalance)] pairs with a nonzero imbalance — the empty
      list is the conservation law holding exactly (tolerance 0). *)
end

type stats = {
  sent : int;  (** accepted for transmission *)
  delivered : int;  (** including duplicate deliveries *)
  duplicated : int;
  dropped_loss : int;  (** lost to [drop_probability] *)
  dropped_down : int;  (** destination (or source) down at send/delivery *)
  dropped_partition : int;  (** link cut by a partition *)
}

val create :
  engine:Simkit.Engine.t ->
  rng:Simkit.Rng.t ->
  ?trace:Simkit.Trace.t ->
  ?obs:Obs.Tracer.t ->
  ?journal:Obs.Journal.t ->
  ?recorder:Obs.Recorder.t ->
  ?span_of:('msg -> (string * int * bool) option) ->
  ?tag_of:('msg -> int) ->
  ?meter:Meter.t ->
  config ->
  'msg t
(** [obs] (default disabled) records one {!Obs.Span.Network} transit
    span per accepted message copy, from send to scheduled delivery.
    [span_of] maps a payload to [(name, txn token, baseline)] —
    [baseline] marks messages the paper's cost model charges to the
    baseline rather than the commit protocol; [None] (and the default)
    records nothing for that payload. Only consulted while [obs] is
    recording, so it may allocate freely. [journal] (default disabled)
    receives one cluster-wide [Heal] entry whenever {!heal} or
    {!heal_pair} actually removes a cut. [recorder] (default disabled)
    gets one {!Obs.Recorder.record_delivery} per delivered message.
    [meter] (default disabled) keeps the per-tag conservation ledger,
    with [tag_of] mapping each payload to its tag in
    [0 .. Meter.tags - 1]; [tag_of] is only consulted while the meter
    records. *)

val register : 'msg t -> name:string -> ('msg envelope -> unit) -> Address.t
(** Register an endpoint with its delivery handler. Handlers run from
    engine events with the clock at the delivery instant. *)

val endpoints : 'msg t -> Address.t list
(** All registered endpoints, in registration order. *)

val send : 'msg t -> src:Address.t -> dst:Address.t -> 'msg -> unit
(** Queue a message. Loss, partitions and down-state are evaluated at both
    send time and delivery time (a node that crashes while a message is in
    flight does not receive it). Self-sends are delivered with the same
    latency as any other message. *)

val set_up : 'msg t -> Address.t -> unit
val set_down : 'msg t -> Address.t -> unit
(** Mark an endpoint crashed: it no longer receives, and [send] from it is
    dropped. In-flight messages *to* it are dropped at delivery time;
    in-flight messages *from* it (sent before the crash) still arrive, as
    on a real network. *)

val is_up : 'msg t -> Address.t -> bool

val partition : 'msg t -> Address.t list -> Address.t list -> unit
(** [partition t left right] cuts every link between a node in [left] and
    a node in [right], both directions. Cumulative with previous cuts. *)

val heal : 'msg t -> unit
(** Remove all partitions. *)

val heal_pair : 'msg t -> Address.t -> Address.t -> unit
(** Remove the cut between two specific nodes, if any. *)

val reachable : 'msg t -> Address.t -> Address.t -> bool
(** No partition between the two nodes (ignores up/down state). *)

(** {2 Runtime fault knobs}

    Loss and duplication rates start at the {!config} values and can be
    re-armed while the simulation runs — the vocabulary of transient
    fault bursts (a flaky switch, a retransmission storm). They apply to
    messages sent after the change; messages already in flight keep the
    fate they were dealt at send time. *)

val set_drop_probability : 'msg t -> float -> unit
(** @raise Invalid_argument outside [0, 1]. *)

val set_duplicate_probability : 'msg t -> float -> unit
(** @raise Invalid_argument outside [0, 1]. *)

val drop_probability : 'msg t -> float
val duplicate_probability : 'msg t -> float
(** The currently armed rates. *)

val stats : 'msg t -> stats

val meter : 'msg t -> Meter.t
(** The conservation ledger passed at {!val:create} (disabled
    otherwise). *)

val in_flight : 'msg t -> int
(** Messages accepted but not yet delivered or dropped. *)
