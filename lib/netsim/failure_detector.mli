(** Heartbeat-based failure detector.

    The paper's clusters detect failed metadata servers by the absence of
    heart-beat messages (§III-A, §III-C). This module implements the local
    half of that scheme: the owner feeds it "I heard from peer [p]"
    notifications (heartbeats or any other traffic) and it declares a peer
    {e suspected} when nothing has been heard for [timeout]. Like every
    real timeout-based detector it is unreliable: a network partition is
    indistinguishable from a crash, which is exactly why the 1PC recovery
    path must fence before touching a suspect's log.

    The detector sweeps its peer table every [sweep_interval] engine
    ticks. Suspicion is edge-triggered: [on_suspect] fires once per
    transition alive→suspected, [on_alive] once per suspected→alive. *)

type t

val create :
  engine:Simkit.Engine.t ->
  timeout:Simkit.Time.span ->
  ?sweep_interval:Simkit.Time.span ->
  peers:Address.t list ->
  on_suspect:(Address.t -> unit) ->
  ?on_alive:(Address.t -> unit) ->
  unit ->
  t
(** All peers start alive with a full timeout budget from creation time.
    [sweep_interval] defaults to [timeout / 4] (minimum 1 ns). The detector
    is created stopped; call {!start}. *)

val start : t -> unit
(** Begin periodic sweeps. Idempotent. *)

val stop : t -> unit
(** Cease sweeping and callbacks. Idempotent; [start] re-arms. *)

val heard_from : t -> Address.t -> unit
(** Record traffic from a peer at the current engine time. If the peer was
    suspected it becomes alive again and [on_alive] fires. Unknown peers
    are ignored. *)

val is_suspected : t -> Address.t -> bool

val suspected : t -> Address.t list
(** Currently suspected peers, in peer-list order. *)

val suspected_count : t -> int
(** [List.length (suspected t)] without the allocation — a telemetry
    gauge. *)
