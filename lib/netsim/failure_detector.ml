let label_sweep = Simkit.Label.v Net "detector.sweep"

type peer_state = {
  address : Address.t;
  mutable last_heard : Simkit.Time.t;
  mutable suspected : bool;
}

type t = {
  engine : Simkit.Engine.t;
  timeout : Simkit.Time.span;
  sweep_interval : Simkit.Time.span;
  peers : peer_state list;
  (* Peer states keyed by {!Address.index} for O(1) [heard_from]: with a
     full heartbeat mesh every node calls it n-1 times per interval, so
     a list scan here turns the fabric O(n^3). *)
  by_index : peer_state option array;
  on_suspect : Address.t -> unit;
  on_alive : Address.t -> unit;
  mutable running : bool;
  mutable sweep : Simkit.Engine.handle option;
}

let create ~engine ~timeout ?sweep_interval ~peers ~on_suspect
    ?(on_alive = fun _ -> ()) () =
  let sweep_interval =
    match sweep_interval with
    | Some s -> s
    | None ->
        let q = Simkit.Time.span_to_ns timeout / 4 in
        Simkit.Time.span_ns (max 1 q)
  in
  let now = Simkit.Engine.now engine in
  let peers =
    List.map
      (fun address -> { address; last_heard = now; suspected = false })
      peers
  in
  let max_index =
    List.fold_left (fun m p -> max m (Address.index p.address)) (-1) peers
  in
  let by_index = Array.make (max_index + 1) None in
  List.iter (fun p -> by_index.(Address.index p.address) <- Some p) peers;
  {
    engine;
    timeout;
    sweep_interval;
    peers;
    by_index;
    on_suspect;
    on_alive;
    running = false;
    sweep = None;
  }

let find t a =
  let i = Address.index a in
  if i < 0 || i >= Array.length t.by_index then None else t.by_index.(i)

let check_peer t now p =
  if (not p.suspected)
     && Simkit.Time.( >= ) now (Simkit.Time.add p.last_heard t.timeout)
  then begin
    p.suspected <- true;
    t.on_suspect p.address
  end

let rec arm t =
  let h =
    Simkit.Engine.schedule t.engine ~label:label_sweep
      ~after:t.sweep_interval (fun () ->
        if t.running then begin
          let now = Simkit.Engine.now t.engine in
          List.iter (check_peer t now) t.peers;
          arm t
        end)
  in
  t.sweep <- Some h

let start t =
  if not t.running then begin
    t.running <- true;
    arm t
  end

let stop t =
  if t.running then begin
    t.running <- false;
    (match t.sweep with Some h -> Simkit.Engine.cancel h | None -> ());
    t.sweep <- None
  end

let heard_from t a =
  match find t a with
  | None -> ()
  | Some p ->
      p.last_heard <- Simkit.Engine.now t.engine;
      if p.suspected then begin
        p.suspected <- false;
        t.on_alive p.address
      end

let is_suspected t a =
  match find t a with None -> false | Some p -> p.suspected

let suspected t =
  List.filter_map
    (fun p -> if p.suspected then Some p.address else None)
    t.peers

let suspected_count t =
  List.fold_left (fun acc p -> if p.suspected then acc + 1 else acc) 0 t.peers
