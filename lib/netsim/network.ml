let label_deliver = Simkit.Label.v Net "net.deliver"

(* Message-conservation ledger: per-tag counters over every copy the
   fabric accepts, classified at the delivery event by the branch taken
   there. The books must balance exactly —

     sent = delivered + dup_delivered + dropped + in_flight

   per tag at any instant. [in_flight] is maintained at the schedule /
   delivery-callback boundaries while the other terms come from the
   classification branches, so a new delivery-side branch that forgets
   to classify (the historical way message accounting drifts) breaks
   the law instead of vanishing. Send-time refusals ([rejected]) never
   enter the fabric and sit outside the law. *)
module Meter = struct
  type t = {
    enabled : bool;
    tags : int;
    sent : int array;  (* copies accepted for transmission *)
    delivered : int array;  (* primary copies handed to the endpoint *)
    dup_delivered : int array;  (* duplicate copies handed to the endpoint *)
    dropped : int array;  (* copies dropped in flight (down / partition) *)
    rejected : int array;  (* refused at send time, before [sent] *)
    in_flight : int array;
  }

  let create ~tags =
    if tags <= 0 then invalid_arg "Network.Meter.create: tags must be positive";
    {
      enabled = true;
      tags;
      sent = Array.make tags 0;
      delivered = Array.make tags 0;
      dup_delivered = Array.make tags 0;
      dropped = Array.make tags 0;
      rejected = Array.make tags 0;
      in_flight = Array.make tags 0;
    }

  let disabled () =
    {
      enabled = false;
      tags = 0;
      sent = [||];
      delivered = [||];
      dup_delivered = [||];
      dropped = [||];
      rejected = [||];
      in_flight = [||];
    }

  let is_recording m = m.enabled
  let tags m = m.tags
  let sent m tag = m.sent.(tag)
  let delivered m tag = m.delivered.(tag)
  let dup_delivered m tag = m.dup_delivered.(tag)
  let dropped m tag = m.dropped.(tag)
  let rejected m tag = m.rejected.(tag)
  let in_flight m tag = m.in_flight.(tag)

  (* Negative tags mean "meter off" at the call sites (the tag is only
     computed while recording), so the notes need no enabled check. *)
  let note_rejected m tag =
    if tag >= 0 then m.rejected.(tag) <- m.rejected.(tag) + 1

  let note_sent m tag =
    if tag >= 0 then begin
      m.sent.(tag) <- m.sent.(tag) + 1;
      m.in_flight.(tag) <- m.in_flight.(tag) + 1
    end

  let note_arrival m tag =
    if tag >= 0 then m.in_flight.(tag) <- m.in_flight.(tag) - 1

  let note_dropped m tag =
    if tag >= 0 then m.dropped.(tag) <- m.dropped.(tag) + 1

  let note_delivered m tag ~dup =
    if tag >= 0 then
      if dup then m.dup_delivered.(tag) <- m.dup_delivered.(tag) + 1
      else m.delivered.(tag) <- m.delivered.(tag) + 1

  let imbalance m tag =
    m.sent.(tag)
    - (m.delivered.(tag) + m.dup_delivered.(tag) + m.dropped.(tag)
       + m.in_flight.(tag))

  (* Exact check, tolerance 0: one (tag, difference) pair per broken
     tag, empty when every tag balances (or the meter is off). *)
  let check m =
    let bad = ref [] in
    for tag = m.tags - 1 downto 0 do
      let d = imbalance m tag in
      if d <> 0 then bad := (tag, d) :: !bad
    done;
    !bad
end

type 'msg envelope = {
  src : Address.t;
  dst : Address.t;
  sent_at : Simkit.Time.t;
  payload : 'msg;
}

type config = {
  latency : Simkit.Time.span;
  jitter : Simkit.Time.span;
  drop_probability : float;
  duplicate_probability : float;
}

let default_config =
  {
    latency = Simkit.Time.span_us 100;
    jitter = Simkit.Time.zero_span;
    drop_probability = 0.0;
    duplicate_probability = 0.0;
  }

type stats = {
  sent : int;
  delivered : int;
  duplicated : int;
  dropped_loss : int;
  dropped_down : int;
  dropped_partition : int;
}

type 'msg endpoint = {
  address : Address.t;
  handler : 'msg envelope -> unit;
  mutable up : bool;
}

type 'msg t = {
  engine : Simkit.Engine.t;
  rng : Simkit.Rng.t;
  trace : Simkit.Trace.t;
  obs : Obs.Tracer.t;
  journal : Obs.Journal.t;
  recorder : Obs.Recorder.t;
  (* Maps a payload to (name, txn token, baseline) for its transit span;
     [None] payloads (heartbeats) record nothing. Only consulted when
     [obs] is recording. *)
  span_of : 'msg -> (string * int * bool) option;
  (* Maps a payload to its meter tag; only consulted while [meter] is
     recording. *)
  tag_of : 'msg -> int;
  meter : Meter.t;
  config : config;
  (* Live loss/duplication rates, initialized from [config] and adjustable
     at runtime (fault-injection bursts arm and disarm them mid-run). *)
  mutable drop_probability : float;
  mutable duplicate_probability : float;
  mutable eps : 'msg endpoint array;
  mutable n : int;
  cuts : (int * int, unit) Hashtbl.t;  (* ordered pairs, lo first *)
  (* Next admissible delivery time per ordered (src, dst) pair, to keep
     links FIFO under jitter. Flat [cap * cap] matrix indexed
     [src * cap + dst] (zero = no floor recorded): the per-message path
     must not hash or allocate. Grown by [register]. *)
  mutable link_clock : Simkit.Time.t array;
  mutable link_cap : int;
  mutable sent : int;
  mutable delivered : int;
  mutable duplicated : int;
  mutable dropped_loss : int;
  mutable dropped_down : int;
  mutable dropped_partition : int;
  mutable in_flight : int;
}

let create ~engine ~rng ?trace ?obs ?journal ?recorder
    ?(span_of = fun _ -> None) ?(tag_of = fun _ -> 0) ?meter
    (config : config) =
  if config.drop_probability < 0.0 || config.drop_probability > 1.0 then
    invalid_arg "Network.create: drop_probability outside [0, 1]";
  if
    config.duplicate_probability < 0.0 || config.duplicate_probability > 1.0
  then invalid_arg "Network.create: duplicate_probability outside [0, 1]";
  let trace =
    match trace with Some t -> t | None -> Simkit.Trace.disabled ()
  in
  let obs = match obs with Some o -> o | None -> Obs.Tracer.disabled () in
  let journal =
    match journal with Some j -> j | None -> Obs.Journal.disabled ()
  in
  let recorder =
    match recorder with Some r -> r | None -> Obs.Recorder.disabled ()
  in
  let meter = match meter with Some m -> m | None -> Meter.disabled () in
  {
    engine;
    rng;
    trace;
    obs;
    journal;
    recorder;
    span_of;
    tag_of;
    meter;
    config;
    drop_probability = config.drop_probability;
    duplicate_probability = config.duplicate_probability;
    eps = [||];
    n = 0;
    cuts = Hashtbl.create 16;
    link_clock = [||];
    link_cap = 0;
    sent = 0;
    delivered = 0;
    duplicated = 0;
    dropped_loss = 0;
    dropped_down = 0;
    dropped_partition = 0;
    in_flight = 0;
  }

let register t ~name handler =
  let address = Address.unsafe_make ~index:t.n ~name in
  let ep = { address; handler; up = true } in
  if t.n = Array.length t.eps then begin
    let bigger = Array.make (max 8 (2 * t.n)) ep in
    Array.blit t.eps 0 bigger 0 t.n;
    t.eps <- bigger
  end;
  t.eps.(t.n) <- ep;
  t.n <- t.n + 1;
  if t.n > t.link_cap then begin
    (* Re-lay the FIFO floors out for the wider matrix. Registration
       happens at assembly time, so this is never on a message path. *)
    let cap = max 8 (2 * t.n) in
    let bigger = Array.make (cap * cap) Simkit.Time.zero in
    for src = 0 to t.link_cap - 1 do
      for dst = 0 to t.link_cap - 1 do
        bigger.((src * cap) + dst) <- t.link_clock.((src * t.link_cap) + dst)
      done
    done;
    t.link_clock <- bigger;
    t.link_cap <- cap
  end;
  address

let endpoints t =
  List.init t.n (fun i -> t.eps.(i).address)

let endpoint t a =
  let i = Address.index a in
  if i < 0 || i >= t.n then invalid_arg "Network: foreign address";
  t.eps.(i)

let pair a b =
  let ia = Address.index a and ib = Address.index b in
  if ia <= ib then (ia, ib) else (ib, ia)

(* Fast path: a healthy fabric (no cuts) answers without allocating the
   pair key. *)
let reachable t a b =
  Hashtbl.length t.cuts = 0 || not (Hashtbl.mem t.cuts (pair a b))

let set_up t a = (endpoint t a).up <- true
let set_down t a = (endpoint t a).up <- false
let is_up t a = (endpoint t a).up

let partition t left right =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Address.equal a b) then
            Hashtbl.replace t.cuts (pair a b) ())
        right)
    left

let journal_heal t =
  Obs.Journal.emit t.journal
    ~time:(Simkit.Engine.now t.engine)
    ~node:(-1) Obs.Journal.Heal

let heal t =
  if Hashtbl.length t.cuts > 0 then journal_heal t;
  Hashtbl.reset t.cuts

let heal_pair t a b =
  if Hashtbl.mem t.cuts (pair a b) then journal_heal t;
  Hashtbl.remove t.cuts (pair a b)

let check_probability ~what p =
  if p < 0.0 || p > 1.0 || Float.is_nan p then
    invalid_arg (Printf.sprintf "Network.%s: probability outside [0, 1]" what)

let set_drop_probability t p =
  check_probability ~what:"set_drop_probability" p;
  t.drop_probability <- p

let set_duplicate_probability t p =
  check_probability ~what:"set_duplicate_probability" p;
  t.duplicate_probability <- p

let drop_probability t = t.drop_probability
let duplicate_probability t = t.duplicate_probability

let trace_drop t ~src ~dst reason =
  if Simkit.Trace.is_recording t.trace then
    Simkit.Trace.emitf t.trace
      ~time:(Simkit.Engine.now t.engine)
      ~source:(Address.name src) ~kind:"net.drop" "%s -> %a (%s)"
      (Address.name src) Address.pp dst reason

(* One-way delay: fixed latency plus uniform jitter, then pushed forward if
   needed so this link never reorders. *)
let delivery_time t ~src ~dst =
  let delay =
    Simkit.Time.add_span t.config.latency
      (if Simkit.Time.span_to_ns t.config.jitter = 0 then
         Simkit.Time.zero_span
       else Simkit.Rng.uniform_span t.rng t.config.jitter)
  in
  let naive = Simkit.Time.add (Simkit.Engine.now t.engine) delay in
  let key = (Address.index src * t.link_cap) + Address.index dst in
  let floor = t.link_clock.(key) in
  let at = if Simkit.Time.( < ) naive floor then floor else naive in
  t.link_clock.(key) <- at;
  at

let send t ~src ~dst payload =
  let src_ep = endpoint t src and dst_ep = endpoint t dst in
  (* One flag load + branch when the meter is off; the negative tag
     turns every note below into a no-op without further checks. *)
  let mtag = if t.meter.Meter.enabled then t.tag_of payload else -1 in
  if not src_ep.up then begin
    t.dropped_down <- t.dropped_down + 1;
    Meter.note_rejected t.meter mtag;
    trace_drop t ~src ~dst "source down"
  end
  else if not (reachable t src dst) then begin
    t.dropped_partition <- t.dropped_partition + 1;
    Meter.note_rejected t.meter mtag;
    trace_drop t ~src ~dst "partitioned"
  end
  else if
    t.drop_probability > 0.0
    && Simkit.Rng.bernoulli t.rng t.drop_probability
  then begin
    t.dropped_loss <- t.dropped_loss + 1;
    Meter.note_rejected t.meter mtag;
    trace_drop t ~src ~dst "loss"
  end
  else begin
    t.sent <- t.sent + 1;
    let sent_at = Simkit.Engine.now t.engine in
    let copies =
      if
        t.duplicate_probability > 0.0
        && Simkit.Rng.bernoulli t.rng t.duplicate_probability
      then begin
        t.duplicated <- t.duplicated + 1;
        2
      end
      else 1
    in
    for copy = 1 to copies do
      (* The first copy on the FIFO link is the logical message; later
         copies are the duplication fault, classified separately so the
         conservation law stays exact under duplicate bursts. *)
      let is_dup = copy > 1 in
      t.in_flight <- t.in_flight + 1;
      Meter.note_sent t.meter mtag;
      let at = delivery_time t ~src ~dst in
      (if Obs.Tracer.is_recording t.obs then
         match t.span_of payload with
         | None -> ()
         | Some (name, txn, baseline) ->
             Obs.Tracer.span t.obs ~start:sent_at ~stop:at ~txn ~baseline
               ~category:Obs.Span.Network ~track:"net" ~name);
      let deliver () =
        t.in_flight <- t.in_flight - 1;
        Meter.note_arrival t.meter mtag;
        if not dst_ep.up then begin
          t.dropped_down <- t.dropped_down + 1;
          Meter.note_dropped t.meter mtag;
          trace_drop t ~src ~dst "destination down"
        end
        else if not (reachable t src dst) then begin
          t.dropped_partition <- t.dropped_partition + 1;
          Meter.note_dropped t.meter mtag;
          trace_drop t ~src ~dst "partitioned in flight"
        end
        else begin
          t.delivered <- t.delivered + 1;
          Meter.note_delivered t.meter mtag ~dup:is_dup;
          if Obs.Recorder.is_recording t.recorder then
            Obs.Recorder.record_delivery t.recorder ~time:at
              ~src:(Address.index src) ~dst:(Address.index dst);
          if Simkit.Trace.is_recording t.trace then
            Simkit.Trace.emitf t.trace ~time:at ~source:(Address.name dst)
              ~kind:"net.recv" "from %a" Address.pp src;
          dst_ep.handler { src; dst; sent_at; payload }
        end
      in
      ignore
        (Simkit.Engine.schedule_at t.engine ~label:label_deliver ~at deliver)
    done
  end

let meter t = t.meter

let stats t =
  {
    sent = t.sent;
    delivered = t.delivered;
    duplicated = t.duplicated;
    dropped_loss = t.dropped_loss;
    dropped_down = t.dropped_down;
    dropped_partition = t.dropped_partition;
  }

let in_flight t = t.in_flight
