type stats = {
  submitted : int;
  committed : int;
  aborted : int;
  reads : int;
  first_submit : Simkit.Time.t;
  last_reply : Simkit.Time.t;
}

let throughput_per_s stats =
  if stats.committed = 0 then 0.0
  else
    let span =
      Simkit.Time.span_to_float_s
        (Simkit.Time.diff stats.last_reply stats.first_submit)
    in
    if span <= 0.0 then 0.0 else float_of_int stats.committed /. span

let pp_stats ppf s =
  Fmt.pf ppf "%d submitted, %d committed, %d aborted, %d reads, %.4gs wall"
    s.submitted s.committed s.aborted s.reads
    (Simkit.Time.span_to_float_s (Simkit.Time.diff s.last_reply s.first_submit))

let rec submit_with_retries cluster ~retries op ~on_done =
  Opc_cluster.Cluster.submit cluster op ~on_done:(fun outcome ->
      match outcome with
      | Acp.Txn.Aborted _ when retries > 0 ->
          submit_with_retries cluster ~retries:(retries - 1) op ~on_done
      | outcome -> on_done outcome)

type record = {
  index : int;
  op : Mds.Op.t;
  mutable outcome : Acp.Txn.outcome option;
  mutable completion_rank : int option;
  mutable replies : int;
}

type t = {
  cluster : Opc_cluster.Cluster.t;
  mutable submitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable reads : int;
  mutable first_submit : Simkit.Time.t;
  mutable last_reply : Simkit.Time.t;
  mutable records_rev : record list;
  mutable completions : int;
}

let stats t =
  {
    submitted = t.submitted;
    committed = t.committed;
    aborted = t.aborted;
    reads = t.reads;
    first_submit = t.first_submit;
    last_reply = t.last_reply;
  }

let done_ t = t.committed + t.aborted >= t.submitted

let fresh cluster =
  {
    cluster;
    submitted = 0;
    committed = 0;
    aborted = 0;
    reads = 0;
    first_submit = Opc_cluster.Cluster.now cluster;
    last_reply = Simkit.Time.zero;
    records_rev = [];
    completions = 0;
  }

let records t = List.rev t.records_rev

let submit t op ~k =
  t.submitted <- t.submitted + 1;
  let r =
    { index = t.submitted - 1; op; outcome = None; completion_rank = None;
      replies = 0 }
  in
  t.records_rev <- r :: t.records_rev;
  Opc_cluster.Cluster.submit t.cluster op ~on_done:(fun outcome ->
      r.replies <- r.replies + 1;
      if r.outcome = None then begin
        r.outcome <- Some outcome;
        r.completion_rank <- Some t.completions;
        t.completions <- t.completions + 1
      end;
      t.last_reply <- Opc_cluster.Cluster.now t.cluster;
      (match outcome with
      | Acp.Txn.Committed -> t.committed <- t.committed + 1
      | Acp.Txn.Aborted _ -> t.aborted <- t.aborted + 1);
      k outcome)

let storm cluster ~dir ~count ?(prefix = "f") () =
  let t = fresh cluster in
  for i = 0 to count - 1 do
    submit t
      (Mds.Op.create_file ~parent:dir ~name:(Printf.sprintf "%s%d" prefix i))
      ~k:(fun _ -> ())
  done;
  t

let churn cluster ~dir ~files ~rounds =
  let t = fresh cluster in
  let rec create_then_delete client round =
    if round < rounds then
      let name = Printf.sprintf "churn%d" client in
      submit t (Mds.Op.create_file ~parent:dir ~name) ~k:(fun outcome ->
          match outcome with
          | Acp.Txn.Committed ->
              submit t (Mds.Op.delete ~parent:dir ~name) ~k:(fun _ ->
                  create_then_delete client (round + 1))
          | Acp.Txn.Aborted _ -> create_then_delete client (round + 1))
  in
  for client = 0 to files - 1 do
    create_then_delete client 0
  done;
  t

type mix = {
  create_weight : int;
  delete_weight : int;
  rename_weight : int;
  lookup_weight : int;
}

let default_mix =
  { create_weight = 70; delete_weight = 20; rename_weight = 10;
    lookup_weight = 0 }

(* Files the generator has committed and not yet deleted/renamed-away,
   per directory: the pool deletes and renames draw from. *)
type live_files = (Mds.Update.ino, string list ref) Hashtbl.t

let pool_add (pool : live_files) dir name =
  match Hashtbl.find_opt pool dir with
  | Some l -> l := name :: !l
  | None -> Hashtbl.replace pool dir (ref [ name ])

let pool_take (pool : live_files) rng dir =
  match Hashtbl.find_opt pool dir with
  | Some ({ contents = _ :: _ } as l) ->
      let arr = Array.of_list !l in
      let i = Simkit.Rng.int rng (Array.length arr) in
      let name = arr.(i) in
      l := List.filteri (fun j _ -> j <> i) !l;
      Some name
  | _ -> None

let closed_loop cluster ~dirs ~clients ~ops_per_client
    ?(mix = default_mix) ?(zipf_s = 0.9) ~rng () =
  if Array.length dirs = 0 then invalid_arg "Workload.closed_loop: no dirs";
  let t = fresh cluster in
  let pool : live_files = Hashtbl.create 16 in
  let total_weight =
    mix.create_weight + mix.delete_weight + mix.rename_weight
    + mix.lookup_weight
  in
  if total_weight <= 0 then invalid_arg "Workload.closed_loop: empty mix";
  let counter = ref 0 in
  let pick_dir () =
    dirs.(Simkit.Rng.zipf rng ~n:(Array.length dirs) ~s:zipf_s)
  in
  let fresh_name client =
    incr counter;
    Printf.sprintf "c%d_%d" client !counter
  in
  let rec step client remaining =
    if remaining > 0 then begin
      let dir = pick_dir () in
      let roll = Simkit.Rng.int rng total_weight in
      let continue_ _ = step client (remaining - 1) in
      if roll < mix.create_weight then begin
        let name = fresh_name client in
        submit t (Mds.Op.create_file ~parent:dir ~name) ~k:(fun outcome ->
            (match outcome with
            | Acp.Txn.Committed -> pool_add pool dir name
            | Acp.Txn.Aborted _ -> ());
            continue_ outcome)
      end
      else if roll < mix.create_weight + mix.delete_weight then
        match pool_take pool rng dir with
        | Some name ->
            submit t (Mds.Op.delete ~parent:dir ~name) ~k:continue_
        | None ->
            (* Nothing to delete here yet: create instead. *)
            let name = fresh_name client in
            submit t (Mds.Op.create_file ~parent:dir ~name)
              ~k:(fun outcome ->
                (match outcome with
                | Acp.Txn.Committed -> pool_add pool dir name
                | Acp.Txn.Aborted _ -> ());
                continue_ outcome)
      else if
        roll < mix.create_weight + mix.delete_weight + mix.lookup_weight
      then begin
        (* Shared-lock read of a (possibly absent) name. *)
        let name =
          match Hashtbl.find_opt pool dir with
          | Some { contents = n :: _ } -> n
          | _ -> "missing"
        in
        Opc_cluster.Cluster.lookup t.cluster ~dir ~name ~on_done:(fun _ ->
            t.reads <- t.reads + 1;
            t.last_reply <- Opc_cluster.Cluster.now t.cluster;
            step client (remaining - 1))
      end
      else
        let dst = pick_dir () in
        match pool_take pool rng dir with
        | Some name ->
            let dst_name = fresh_name client in
            submit t
              (Mds.Op.rename ~src_dir:dir ~src_name:name ~dst_dir:dst
                 ~dst_name)
              ~k:(fun outcome ->
                (match outcome with
                | Acp.Txn.Committed -> pool_add pool dst dst_name
                | Acp.Txn.Aborted _ -> pool_add pool dir name);
                continue_ outcome)
        | None ->
            let name = fresh_name client in
            submit t (Mds.Op.create_file ~parent:dir ~name)
              ~k:(fun outcome ->
                (match outcome with
                | Acp.Txn.Committed -> pool_add pool dir name
                | Acp.Txn.Aborted _ -> ());
                continue_ outcome)
    end
  in
  for client = 0 to clients - 1 do
    step client ops_per_client
  done;
  t

(* ------------------------------------------------------------------ *)
(* Trace replay                                                        *)
(* ------------------------------------------------------------------ *)

type script_op =
  | S_create of string
  | S_mkdir of string
  | S_delete of string
  | S_rename of string * string

let pp_script_op ppf = function
  | S_create p -> Fmt.pf ppf "create %s" p
  | S_mkdir p -> Fmt.pf ppf "mkdir %s" p
  | S_delete p -> Fmt.pf ppf "delete %s" p
  | S_rename (a, b) -> Fmt.pf ppf "rename %s %s" a b

let valid_path p = String.length p > 1 && p.[0] = '/'

let parse_script text =
  let parse_line lineno line =
    let words =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun w -> w <> "")
    in
    match words with
    | [] -> Ok None
    | w :: _ when String.length w > 0 && w.[0] = '#' -> Ok None
    | [ "create"; p ] when valid_path p -> Ok (Some (S_create p))
    | [ "mkdir"; p ] when valid_path p -> Ok (Some (S_mkdir p))
    | [ "delete"; p ] when valid_path p -> Ok (Some (S_delete p))
    | [ "rename"; a; b ] when valid_path a && valid_path b ->
        Ok (Some (S_rename (a, b)))
    | _ -> Error (Printf.sprintf "line %d: cannot parse %S" lineno line)
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some op) -> go (lineno + 1) (op :: acc) rest
        | Error _ as e -> e)
  in
  go 1 [] lines

(* Resolve /a/b/c to (inode of /a/b, "c") by walking the live namespace
   through the owning servers' volatile state. *)
let split_path path =
  match List.rev (List.filter (fun c -> c <> "") (String.split_on_char '/' path)) with
  | [] -> Error "empty path"
  | leaf :: rev_parents -> Ok (List.rev rev_parents, leaf)

let resolve_parent cluster path =
  match split_path path with
  | Error _ as e -> e
  | Ok (parents, leaf) ->
      let placement = Opc_cluster.Cluster.placement cluster in
      let rec walk dir = function
        | [] -> Ok (dir, leaf)
        | component :: rest -> (
            match Mds.Placement.node_of placement dir with
            | exception Not_found -> Error "unplaced directory"
            | server -> (
                let node = Opc_cluster.Cluster.node cluster server in
                match
                  Mds.State.lookup
                    (Mds.Store.volatile (Opc_cluster.Node.store node))
                    ~dir ~name:component
                with
                | Some ino -> walk ino rest
                | None ->
                    Error (Printf.sprintf "no such directory: %s" component)))
      in
      walk (Opc_cluster.Cluster.root cluster) parents

let replay cluster ?(concurrency = 1) script =
  if concurrency < 1 then invalid_arg "Workload.replay: concurrency < 1";
  let t = fresh cluster in
  let queue = Queue.create () in
  List.iter (fun op -> Queue.add op queue) script;
  let to_op = function
    | S_create p ->
        Result.map
          (fun (parent, name) -> Mds.Op.create_file ~parent ~name)
          (resolve_parent cluster p)
    | S_mkdir p ->
        Result.map
          (fun (parent, name) -> Mds.Op.mkdir ~parent ~name)
          (resolve_parent cluster p)
    | S_delete p ->
        Result.map
          (fun (parent, name) -> Mds.Op.delete ~parent ~name)
          (resolve_parent cluster p)
    | S_rename (a, b) -> (
        match (resolve_parent cluster a, resolve_parent cluster b) with
        | Ok (src_dir, src_name), Ok (dst_dir, dst_name) ->
            Ok (Mds.Op.rename ~src_dir ~src_name ~dst_dir ~dst_name)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
  in
  let rec pump () =
    match Queue.take_opt queue with
    | None -> ()
    | Some sop -> (
        match to_op sop with
        | Ok op -> submit t op ~k:(fun _ -> pump ())
        | Error reason ->
            (* Count unresolvable operations as aborted submissions. *)
            t.submitted <- t.submitted + 1;
            t.aborted <- t.aborted + 1;
            t.last_reply <- Opc_cluster.Cluster.now cluster;
            ignore reason;
            pump ())
  in
  for _ = 1 to concurrency do
    pump ()
  done;
  t

(* ------------------------------------------------------------------ *)
(* Open-loop arrivals                                                  *)
(* ------------------------------------------------------------------ *)

module Open_loop = struct
  let label_arrival = Simkit.Label.v Other "wl.openloop.arrival"
  let label_attempt_timeout = Simkit.Label.v Other "wl.openloop.timeout"
  let label_retry = Simkit.Label.v Other "wl.openloop.retry"

  type arrival = Poisson | Bursty of { burst : int }

  type policy = {
    attempt_timeout : Simkit.Time.span;
    backoff : Simkit.Time.span;
    backoff_multiplier : float;
    jitter : float;
    max_attempts : int;
  }

  let default_policy =
    {
      attempt_timeout = Simkit.Time.span_ms 500;
      backoff = Simkit.Time.span_ms 100;
      backoff_multiplier = 2.0;
      jitter = 0.2;
      max_attempts = 4;
    }

  type spec = {
    arrival : arrival;
    rate_per_s : float;
    duration : Simkit.Time.span;
    dirs : Mds.Update.ino array;
    zipf_s : float;
    policy : policy;
  }

  type resolution = R_committed | R_aborted of string | R_gave_up

  type request = {
    req_index : int;
    req_key : Opc_cluster.Ingress.key;
    req_op : Mds.Op.t;
    arrived_at : Simkit.Time.t;
    mutable attempts : int;
    mutable busy_replies : int;
    mutable attempt_timeouts : int;
    mutable resolution : resolution option;
    mutable resolved_at : Simkit.Time.t;
    mutable gen : int;  (* generation of the live attempt *)
    timer : Simkit.Engine.handle option ref;
  }

  type t = {
    cluster : Opc_cluster.Cluster.t;
    ingress : Opc_cluster.Ingress.t;
    spec : spec;
    rng : Simkit.Rng.t;
    mutable launched : int;
    mutable resolved : int;
    mutable committed : int;
    mutable aborted : int;
    mutable gave_up : int;
    mutable busy : int;
    mutable timeouts : int;
    mutable total_attempts : int;
    mutable arrivals_open : bool;
    latency : Metrics.Histogram.t;  (* committed: arrival -> resolution *)
    mutable requests_rev : request list;
  }

  let cancel_slot slot =
    match !slot with
    | Some h ->
        Simkit.Engine.cancel h;
        slot := None
    | None -> ()

  let now t = Opc_cluster.Cluster.now t.cluster
  let engine t = Opc_cluster.Cluster.engine t.cluster

  let resolve t r res =
    match r.resolution with
    | Some _ -> ()
    | None -> (
        r.resolution <- Some res;
        r.resolved_at <- now t;
        t.resolved <- t.resolved + 1;
        match res with
        | R_committed ->
            t.committed <- t.committed + 1;
            Metrics.Histogram.record t.latency
              (Simkit.Time.diff r.resolved_at r.arrived_at)
        | R_aborted _ -> t.aborted <- t.aborted + 1
        | R_gave_up -> t.gave_up <- t.gave_up + 1)

  (* Exponential backoff with deterministic, seeded, symmetric jitter:
     base * multiplier^(attempt-1), scaled by 1 +/- jitter. *)
  let backoff_delay t r =
    let p = t.spec.policy in
    let base =
      float_of_int (Simkit.Time.span_to_ns p.backoff)
      *. (p.backoff_multiplier ** float_of_int (r.attempts - 1))
    in
    let factor =
      if p.jitter > 0.0 then
        1.0 +. (p.jitter *. ((2.0 *. Simkit.Rng.float t.rng 1.0) -. 1.0))
      else 1.0
    in
    Simkit.Time.span_ns (max 1 (int_of_float (base *. factor)))

  let rec attempt t r =
    r.attempts <- r.attempts + 1;
    t.total_attempts <- t.total_attempts + 1;
    let gen = r.gen in
    cancel_slot r.timer;
    r.timer :=
      Some
        (Simkit.Engine.schedule (engine t) ~label:label_attempt_timeout
           ~after:t.spec.policy.attempt_timeout (fun () ->
             r.timer := None;
             if r.resolution = None && r.gen = gen then begin
               (* The attempt is dead to the client; a late reply for it
                  is ignored and the retry reuses the idempotency key. *)
               r.gen <- r.gen + 1;
               r.attempt_timeouts <- r.attempt_timeouts + 1;
               t.timeouts <- t.timeouts + 1;
               retry_or_give_up t r
             end));
    Opc_cluster.Ingress.submit t.ingress ~key:r.req_key r.req_op
      ~on_reply:(fun reply ->
        if r.gen = gen && r.resolution = None then begin
          r.gen <- r.gen + 1;
          cancel_slot r.timer;
          match reply with
          | Opc_cluster.Ingress.Busy ->
              r.busy_replies <- r.busy_replies + 1;
              t.busy <- t.busy + 1;
              retry_or_give_up t r
          | Opc_cluster.Ingress.Done Acp.Txn.Committed ->
              resolve t r R_committed
          | Opc_cluster.Ingress.Done (Acp.Txn.Aborted reason) ->
              resolve t r (R_aborted reason)
        end)

  and retry_or_give_up t r =
    if r.attempts >= t.spec.policy.max_attempts then resolve t r R_gave_up
    else
      ignore
        (Simkit.Engine.schedule (engine t) ~label:label_retry
           ~after:(backoff_delay t r) (fun () ->
             if r.resolution = None then attempt t r))

  let launch t =
    let dir =
      t.spec.dirs.(Simkit.Rng.zipf t.rng
                     ~n:(Array.length t.spec.dirs)
                     ~s:t.spec.zipf_s)
    in
    let idx = t.launched in
    t.launched <- t.launched + 1;
    let r =
      {
        req_index = idx;
        req_key = { Opc_cluster.Ingress.client = idx; request = 0 };
        req_op =
          Mds.Op.create_file ~parent:dir ~name:(Printf.sprintf "ol%d" idx);
        arrived_at = now t;
        attempts = 0;
        busy_replies = 0;
        attempt_timeouts = 0;
        resolution = None;
        resolved_at = Simkit.Time.zero;
        gen = 0;
        timer = ref None;
      }
    in
    t.requests_rev <- r :: t.requests_rev;
    attempt t r

  let rec schedule_next_arrival t ~stop =
    let mean =
      let per_arrival =
        match t.spec.arrival with
        | Poisson -> 1.0
        | Bursty { burst } -> float_of_int burst
      in
      Simkit.Time.span_ns
        (max 1 (int_of_float (per_arrival *. 1e9 /. t.spec.rate_per_s)))
    in
    let gap = Simkit.Rng.exponential_span t.rng ~mean in
    if Simkit.Time.( > ) (Simkit.Time.add (now t) gap) stop then
      t.arrivals_open <- false
    else
      ignore
        (Simkit.Engine.schedule (engine t) ~label:label_arrival ~after:gap
           (fun () ->
             (match t.spec.arrival with
             | Poisson -> launch t
             | Bursty { burst } ->
                 for _ = 1 to burst do
                   launch t
                 done);
             schedule_next_arrival t ~stop))

  let run cluster ingress spec ~rng =
    if Array.length spec.dirs = 0 then
      invalid_arg "Open_loop.run: no directories";
    if spec.rate_per_s <= 0.0 then
      invalid_arg "Open_loop.run: offered rate must be positive";
    if spec.policy.max_attempts < 1 then
      invalid_arg "Open_loop.run: max_attempts must be at least 1";
    if spec.policy.backoff_multiplier < 1.0 then
      invalid_arg "Open_loop.run: backoff_multiplier below 1.0";
    if spec.policy.jitter < 0.0 || spec.policy.jitter >= 1.0 then
      invalid_arg "Open_loop.run: jitter must be in [0, 1)";
    (match spec.arrival with
    | Bursty { burst } when burst < 1 ->
        invalid_arg "Open_loop.run: empty burst"
    | Bursty _ | Poisson -> ());
    let t =
      {
        cluster;
        ingress;
        spec;
        rng;
        launched = 0;
        resolved = 0;
        committed = 0;
        aborted = 0;
        gave_up = 0;
        busy = 0;
        timeouts = 0;
        total_attempts = 0;
        arrivals_open = true;
        latency = Metrics.Histogram.create ();
        requests_rev = [];
      }
    in
    let stop = Simkit.Time.add (now t) spec.duration in
    schedule_next_arrival t ~stop;
    t

  (* The cluster's own settle is not enough: a retry backoff or arrival
     timer is client state the cluster cannot see, so it could report
     quiescence while requests are still due to fire. Drain the client
     side first, then hand the remaining deadline to the cluster. *)
  let settle ?(deadline = Simkit.Time.span_s 600) t =
    let eng = engine t in
    let stop = Simkit.Time.add (Simkit.Engine.now eng) deadline in
    let rec loop () =
      if (not t.arrivals_open) && t.resolved >= t.launched then
        Opc_cluster.Cluster.settle
          ~deadline:(Simkit.Time.diff stop (Simkit.Engine.now eng))
          t.cluster
      else if Simkit.Time.( > ) (Simkit.Engine.now eng) stop then
        Opc_cluster.Cluster.Deadline_exceeded
      else if Simkit.Engine.step eng then loop ()
      else Opc_cluster.Cluster.Stuck
    in
    loop ()

  let requests t = List.rev t.requests_rev
  let latency t = t.latency

  type stats = {
    offered : int;
    resolved : int;
    committed : int;
    aborted : int;
    gave_up : int;
    busy_replies : int;
    attempt_timeouts : int;
    attempts : int;
    goodput_per_s : float;
    retry_amplification : float;
  }

  let stats (t : t) =
    {
      offered = t.launched;
      resolved = t.resolved;
      committed = t.committed;
      aborted = t.aborted;
      gave_up = t.gave_up;
      busy_replies = t.busy;
      attempt_timeouts = t.timeouts;
      attempts = t.total_attempts;
      goodput_per_s =
        (let s = Simkit.Time.span_to_float_s t.spec.duration in
         if s <= 0.0 then 0.0 else float_of_int t.committed /. s);
      retry_amplification =
        (if t.launched = 0 then 1.0
         else float_of_int t.total_attempts /. float_of_int t.launched);
    }
end
