type stats = {
  submitted : int;
  committed : int;
  aborted : int;
  reads : int;
  first_submit : Simkit.Time.t;
  last_reply : Simkit.Time.t;
}

let throughput_per_s stats =
  if stats.committed = 0 then 0.0
  else
    let span =
      Simkit.Time.span_to_float_s
        (Simkit.Time.diff stats.last_reply stats.first_submit)
    in
    if span <= 0.0 then 0.0 else float_of_int stats.committed /. span

let pp_stats ppf s =
  Fmt.pf ppf "%d submitted, %d committed, %d aborted, %d reads, %.4gs wall"
    s.submitted s.committed s.aborted s.reads
    (Simkit.Time.span_to_float_s (Simkit.Time.diff s.last_reply s.first_submit))

let rec submit_with_retries cluster ~retries op ~on_done =
  Opc_cluster.Cluster.submit cluster op ~on_done:(fun outcome ->
      match outcome with
      | Acp.Txn.Aborted _ when retries > 0 ->
          submit_with_retries cluster ~retries:(retries - 1) op ~on_done
      | outcome -> on_done outcome)

type record = {
  index : int;
  op : Mds.Op.t;
  mutable outcome : Acp.Txn.outcome option;
  mutable completion_rank : int option;
  mutable replies : int;
}

type t = {
  cluster : Opc_cluster.Cluster.t;
  mutable submitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable reads : int;
  mutable first_submit : Simkit.Time.t;
  mutable last_reply : Simkit.Time.t;
  mutable records_rev : record list;
  mutable completions : int;
}

let stats t =
  {
    submitted = t.submitted;
    committed = t.committed;
    aborted = t.aborted;
    reads = t.reads;
    first_submit = t.first_submit;
    last_reply = t.last_reply;
  }

let done_ t = t.committed + t.aborted >= t.submitted

let fresh cluster =
  {
    cluster;
    submitted = 0;
    committed = 0;
    aborted = 0;
    reads = 0;
    first_submit = Opc_cluster.Cluster.now cluster;
    last_reply = Simkit.Time.zero;
    records_rev = [];
    completions = 0;
  }

let records t = List.rev t.records_rev

let submit t op ~k =
  t.submitted <- t.submitted + 1;
  let r =
    { index = t.submitted - 1; op; outcome = None; completion_rank = None;
      replies = 0 }
  in
  t.records_rev <- r :: t.records_rev;
  Opc_cluster.Cluster.submit t.cluster op ~on_done:(fun outcome ->
      r.replies <- r.replies + 1;
      if r.outcome = None then begin
        r.outcome <- Some outcome;
        r.completion_rank <- Some t.completions;
        t.completions <- t.completions + 1
      end;
      t.last_reply <- Opc_cluster.Cluster.now t.cluster;
      (match outcome with
      | Acp.Txn.Committed -> t.committed <- t.committed + 1
      | Acp.Txn.Aborted _ -> t.aborted <- t.aborted + 1);
      k outcome)

let storm cluster ~dir ~count ?(prefix = "f") () =
  let t = fresh cluster in
  for i = 0 to count - 1 do
    submit t
      (Mds.Op.create_file ~parent:dir ~name:(Printf.sprintf "%s%d" prefix i))
      ~k:(fun _ -> ())
  done;
  t

let churn cluster ~dir ~files ~rounds =
  let t = fresh cluster in
  let rec create_then_delete client round =
    if round < rounds then
      let name = Printf.sprintf "churn%d" client in
      submit t (Mds.Op.create_file ~parent:dir ~name) ~k:(fun outcome ->
          match outcome with
          | Acp.Txn.Committed ->
              submit t (Mds.Op.delete ~parent:dir ~name) ~k:(fun _ ->
                  create_then_delete client (round + 1))
          | Acp.Txn.Aborted _ -> create_then_delete client (round + 1))
  in
  for client = 0 to files - 1 do
    create_then_delete client 0
  done;
  t

type mix = {
  create_weight : int;
  delete_weight : int;
  rename_weight : int;
  lookup_weight : int;
}

let default_mix =
  { create_weight = 70; delete_weight = 20; rename_weight = 10;
    lookup_weight = 0 }

(* Files the generator has committed and not yet deleted/renamed-away,
   per directory: the pool deletes and renames draw from. *)
type live_files = (Mds.Update.ino, string list ref) Hashtbl.t

let pool_add (pool : live_files) dir name =
  match Hashtbl.find_opt pool dir with
  | Some l -> l := name :: !l
  | None -> Hashtbl.replace pool dir (ref [ name ])

let pool_take (pool : live_files) rng dir =
  match Hashtbl.find_opt pool dir with
  | Some ({ contents = _ :: _ } as l) ->
      let arr = Array.of_list !l in
      let i = Simkit.Rng.int rng (Array.length arr) in
      let name = arr.(i) in
      l := List.filteri (fun j _ -> j <> i) !l;
      Some name
  | _ -> None

let closed_loop cluster ~dirs ~clients ~ops_per_client
    ?(mix = default_mix) ?(zipf_s = 0.9) ~rng () =
  if Array.length dirs = 0 then invalid_arg "Workload.closed_loop: no dirs";
  let t = fresh cluster in
  let pool : live_files = Hashtbl.create 16 in
  let total_weight =
    mix.create_weight + mix.delete_weight + mix.rename_weight
    + mix.lookup_weight
  in
  if total_weight <= 0 then invalid_arg "Workload.closed_loop: empty mix";
  let counter = ref 0 in
  let pick_dir () =
    dirs.(Simkit.Rng.zipf rng ~n:(Array.length dirs) ~s:zipf_s)
  in
  let fresh_name client =
    incr counter;
    Printf.sprintf "c%d_%d" client !counter
  in
  let rec step client remaining =
    if remaining > 0 then begin
      let dir = pick_dir () in
      let roll = Simkit.Rng.int rng total_weight in
      let continue_ _ = step client (remaining - 1) in
      if roll < mix.create_weight then begin
        let name = fresh_name client in
        submit t (Mds.Op.create_file ~parent:dir ~name) ~k:(fun outcome ->
            (match outcome with
            | Acp.Txn.Committed -> pool_add pool dir name
            | Acp.Txn.Aborted _ -> ());
            continue_ outcome)
      end
      else if roll < mix.create_weight + mix.delete_weight then
        match pool_take pool rng dir with
        | Some name ->
            submit t (Mds.Op.delete ~parent:dir ~name) ~k:continue_
        | None ->
            (* Nothing to delete here yet: create instead. *)
            let name = fresh_name client in
            submit t (Mds.Op.create_file ~parent:dir ~name)
              ~k:(fun outcome ->
                (match outcome with
                | Acp.Txn.Committed -> pool_add pool dir name
                | Acp.Txn.Aborted _ -> ());
                continue_ outcome)
      else if
        roll < mix.create_weight + mix.delete_weight + mix.lookup_weight
      then begin
        (* Shared-lock read of a (possibly absent) name. *)
        let name =
          match Hashtbl.find_opt pool dir with
          | Some { contents = n :: _ } -> n
          | _ -> "missing"
        in
        Opc_cluster.Cluster.lookup t.cluster ~dir ~name ~on_done:(fun _ ->
            t.reads <- t.reads + 1;
            t.last_reply <- Opc_cluster.Cluster.now t.cluster;
            step client (remaining - 1))
      end
      else
        let dst = pick_dir () in
        match pool_take pool rng dir with
        | Some name ->
            let dst_name = fresh_name client in
            submit t
              (Mds.Op.rename ~src_dir:dir ~src_name:name ~dst_dir:dst
                 ~dst_name)
              ~k:(fun outcome ->
                (match outcome with
                | Acp.Txn.Committed -> pool_add pool dst dst_name
                | Acp.Txn.Aborted _ -> pool_add pool dir name);
                continue_ outcome)
        | None ->
            let name = fresh_name client in
            submit t (Mds.Op.create_file ~parent:dir ~name)
              ~k:(fun outcome ->
                (match outcome with
                | Acp.Txn.Committed -> pool_add pool dir name
                | Acp.Txn.Aborted _ -> ());
                continue_ outcome)
    end
  in
  for client = 0 to clients - 1 do
    step client ops_per_client
  done;
  t

(* ------------------------------------------------------------------ *)
(* Trace replay                                                        *)
(* ------------------------------------------------------------------ *)

type script_op =
  | S_create of string
  | S_mkdir of string
  | S_delete of string
  | S_rename of string * string

let pp_script_op ppf = function
  | S_create p -> Fmt.pf ppf "create %s" p
  | S_mkdir p -> Fmt.pf ppf "mkdir %s" p
  | S_delete p -> Fmt.pf ppf "delete %s" p
  | S_rename (a, b) -> Fmt.pf ppf "rename %s %s" a b

let valid_path p = String.length p > 1 && p.[0] = '/'

let parse_script text =
  let parse_line lineno line =
    let words =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun w -> w <> "")
    in
    match words with
    | [] -> Ok None
    | w :: _ when String.length w > 0 && w.[0] = '#' -> Ok None
    | [ "create"; p ] when valid_path p -> Ok (Some (S_create p))
    | [ "mkdir"; p ] when valid_path p -> Ok (Some (S_mkdir p))
    | [ "delete"; p ] when valid_path p -> Ok (Some (S_delete p))
    | [ "rename"; a; b ] when valid_path a && valid_path b ->
        Ok (Some (S_rename (a, b)))
    | _ -> Error (Printf.sprintf "line %d: cannot parse %S" lineno line)
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Ok None -> go (lineno + 1) acc rest
        | Ok (Some op) -> go (lineno + 1) (op :: acc) rest
        | Error _ as e -> e)
  in
  go 1 [] lines

(* Resolve /a/b/c to (inode of /a/b, "c") by walking the live namespace
   through the owning servers' volatile state. *)
let split_path path =
  match List.rev (List.filter (fun c -> c <> "") (String.split_on_char '/' path)) with
  | [] -> Error "empty path"
  | leaf :: rev_parents -> Ok (List.rev rev_parents, leaf)

let resolve_parent cluster path =
  match split_path path with
  | Error _ as e -> e
  | Ok (parents, leaf) ->
      let placement = Opc_cluster.Cluster.placement cluster in
      let rec walk dir = function
        | [] -> Ok (dir, leaf)
        | component :: rest -> (
            match Mds.Placement.node_of placement dir with
            | exception Not_found -> Error "unplaced directory"
            | server -> (
                let node = Opc_cluster.Cluster.node cluster server in
                match
                  Mds.State.lookup
                    (Mds.Store.volatile (Opc_cluster.Node.store node))
                    ~dir ~name:component
                with
                | Some ino -> walk ino rest
                | None ->
                    Error (Printf.sprintf "no such directory: %s" component)))
      in
      walk (Opc_cluster.Cluster.root cluster) parents

let replay cluster ?(concurrency = 1) script =
  if concurrency < 1 then invalid_arg "Workload.replay: concurrency < 1";
  let t = fresh cluster in
  let queue = Queue.create () in
  List.iter (fun op -> Queue.add op queue) script;
  let to_op = function
    | S_create p ->
        Result.map
          (fun (parent, name) -> Mds.Op.create_file ~parent ~name)
          (resolve_parent cluster p)
    | S_mkdir p ->
        Result.map
          (fun (parent, name) -> Mds.Op.mkdir ~parent ~name)
          (resolve_parent cluster p)
    | S_delete p ->
        Result.map
          (fun (parent, name) -> Mds.Op.delete ~parent ~name)
          (resolve_parent cluster p)
    | S_rename (a, b) -> (
        match (resolve_parent cluster a, resolve_parent cluster b) with
        | Ok (src_dir, src_name), Ok (dst_dir, dst_name) ->
            Ok (Mds.Op.rename ~src_dir ~src_name ~dst_dir ~dst_name)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
  in
  let rec pump () =
    match Queue.take_opt queue with
    | None -> ()
    | Some sop -> (
        match to_op sop with
        | Ok op -> submit t op ~k:(fun _ -> pump ())
        | Error reason ->
            (* Count unresolvable operations as aborted submissions. *)
            t.submitted <- t.submitted + 1;
            t.aborted <- t.aborted + 1;
            t.last_reply <- Opc_cluster.Cluster.now cluster;
            ignore reason;
            pump ())
  in
  for _ = 1 to concurrency do
    pump ()
  done;
  t
