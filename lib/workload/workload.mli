(** Workload generators.

    Drives a {!Opc_cluster.Cluster} with the access patterns the paper
    cares about. Generators submit through the normal client API and
    count outcomes; run the cluster to quiescence (or for a fixed span)
    and read the stats afterwards.

    The headline generator is {!storm} — the paper's Figure 6 workload:
    N distributed CREATEs of distinct files in one directory, submitted
    simultaneously to that directory's server ("HPC applications that
    create many files in the same directory"). *)

type stats = {
  submitted : int;  (** mutating operations submitted *)
  committed : int;
  aborted : int;
  reads : int;  (** lookups served (closed-loop mixes with reads) *)
  first_submit : Simkit.Time.t;
  last_reply : Simkit.Time.t;  (** epoch if nothing completed *)
}

val throughput_per_s : stats -> float
(** Committed operations per simulated second, measured from first
    submission to last reply. 0 if nothing committed. *)

val pp_stats : Format.formatter -> stats -> unit

val submit_with_retries :
  Opc_cluster.Cluster.t ->
  retries:int ->
  Mds.Op.t ->
  on_done:(Acp.Txn.outcome -> unit) ->
  unit
(** ACID Sim's "leave" behaviour: an aborted transaction is resubmitted
    by its source. Retries up to [retries] extra times on any abort
    (timeouts, distributed deadlocks resolved by lock timeouts, crashes);
    [on_done] gets the final outcome. *)

type t
(** A running workload's counters. *)

val stats : t -> stats
val done_ : t -> bool
(** Every submitted operation has completed. *)

type record = {
  index : int;  (** submission order, 0-based *)
  op : Mds.Op.t;
  mutable outcome : Acp.Txn.outcome option;  (** [None] until replied *)
  mutable completion_rank : int option;
      (** position in reply order — replaying committed records by this
          rank reconstructs the namespace the cluster should hold *)
  mutable replies : int;  (** [on_done] invocations; must end up 1 *)
}

val records : t -> record list
(** Per-operation ledger in submission order, one record per mutating
    operation any generator submitted. The raw material for end-of-run
    oracles: exactly-once delivery ([replies = 1], [outcome <> None])
    and expected-namespace reconstruction. *)

val storm :
  Opc_cluster.Cluster.t ->
  dir:Mds.Update.ino ->
  count:int ->
  ?prefix:string ->
  unit ->
  t
(** Submit [count] CREATEs of ["<prefix><i>"] in [dir], all at the
    current instant. *)

val churn :
  Opc_cluster.Cluster.t ->
  dir:Mds.Update.ino ->
  files:int ->
  rounds:int ->
  t
(** [files] clients each repeatedly CREATE then DELETE their own file in
    [dir], [rounds] times — a create/delete mix that exercises both
    distributed operation types and the unref/reap path. *)

type mix = {
  create_weight : int;
  delete_weight : int;
  rename_weight : int;
  lookup_weight : int;  (** shared-lock reads (no transaction) *)
}

val default_mix : mix
(** 70 % create, 20 % delete, 10 % rename, no reads — the paper's
    write-dominated HPC profile. Metadata-read-heavy studies raise
    [lookup_weight]. *)

val closed_loop :
  Opc_cluster.Cluster.t ->
  dirs:Mds.Update.ino array ->
  clients:int ->
  ops_per_client:int ->
  ?mix:mix ->
  ?zipf_s:float ->
  rng:Simkit.Rng.t ->
  unit ->
  t
(** [clients] independent clients, each submitting its next operation
    when the previous one completes. Directories are drawn Zipf([zipf_s],
    default 0.9) over [dirs]; deletes and renames target files this
    generator created earlier (aborted or not-yet-possible picks fall
    back to a create). *)

(** {1 Trace replay}

    Replays an application trace given as one operation per line:

    {v
    # comments and blank lines are skipped
    mkdir  /checkpoints
    create /checkpoints/rank0.out
    create /checkpoints/rank1.out
    delete /checkpoints/rank0.out
    rename /checkpoints/rank1.out /checkpoints/final.out
    v}

    Paths are absolute, [/]-separated, resolved against the live
    namespace at submission time (parents must already exist — traces
    are replayed in order, one operation per [concurrency] slot). *)

type script_op =
  | S_create of string
  | S_mkdir of string
  | S_delete of string
  | S_rename of string * string

val parse_script : string -> (script_op list, string) result
(** Parse trace text. The error names the offending line. *)

val pp_script_op : Format.formatter -> script_op -> unit

val replay :
  Opc_cluster.Cluster.t -> ?concurrency:int -> script_op list -> t
(** Submit the script's operations in order, keeping up to
    [concurrency] (default 1) in flight. Operations whose parent path
    does not resolve abort immediately (counted as aborted). *)

(** {1 Open-loop arrivals}

    The overload harness: requests arrive on their own clock (Poisson or
    bursty), regardless of whether earlier ones completed — so offered
    load can be pushed past the cluster's capacity knee, which a
    closed loop by construction cannot do. Each logical request is a
    lightweight fire-and-track client with a retry policy: a per-attempt
    timeout, exponential backoff with deterministic seeded jitter, a
    bounded attempt budget, and one idempotency key held stable across
    every retry, submitted through an {!Opc_cluster.Ingress} front
    door. *)

module Open_loop : sig
  type arrival =
    | Poisson  (** independent exponential inter-arrivals *)
    | Bursty of { burst : int }
        (** [burst] simultaneous arrivals per (Poisson) arrival event,
            with the gap scaled so the mean offered rate is unchanged *)

  type policy = {
    attempt_timeout : Simkit.Time.span;
        (** client-side patience per attempt *)
    backoff : Simkit.Time.span;  (** delay before the first retry *)
    backoff_multiplier : float;  (** growth per retry ([>= 1.0]) *)
    jitter : float;
        (** symmetric fractional jitter on each backoff, in [\[0, 1)];
            drawn from the workload's seeded generator *)
    max_attempts : int;  (** total attempts, first submission included *)
  }

  val default_policy : policy
  (** 500 ms patience, 100 ms backoff doubling per retry with 20 %
      jitter, 4 attempts. *)

  type spec = {
    arrival : arrival;
    rate_per_s : float;  (** mean offered load, requests per second *)
    duration : Simkit.Time.span;  (** arrival window *)
    dirs : Mds.Update.ino array;  (** targets, drawn Zipf([zipf_s]) *)
    zipf_s : float;
    policy : policy;
  }

  type resolution =
    | R_committed
    | R_aborted of string  (** definitive cluster abort; not retried *)
    | R_gave_up  (** attempt budget exhausted (timeouts and/or BUSY) *)

  type request = {
    req_index : int;
    req_key : Opc_cluster.Ingress.key;  (** stable across retries *)
    req_op : Mds.Op.t;
    arrived_at : Simkit.Time.t;
    mutable attempts : int;
    mutable busy_replies : int;
    mutable attempt_timeouts : int;
    mutable resolution : resolution option;
    mutable resolved_at : Simkit.Time.t;
    mutable gen : int;  (** internal: live-attempt generation *)
    timer : Simkit.Engine.handle option ref;
  }

  type t

  val run :
    Opc_cluster.Cluster.t ->
    Opc_cluster.Ingress.t ->
    spec ->
    rng:Simkit.Rng.t ->
    t
  (** Schedule the arrival process (requests fire as the engine runs;
      nothing has executed yet on return). Run the engine — normally via
      {!settle} — to completion.
      @raise Invalid_argument on an empty [dirs], a non-positive rate or
      a nonsensical policy. *)

  val settle :
    ?deadline:Simkit.Time.span -> t -> Opc_cluster.Cluster.settle_outcome
  (** Step until every request is resolved {e and} the cluster itself is
      quiescent. The client side drains first: retry and arrival timers
      are invisible to {!Opc_cluster.Cluster.settle}, which could
      otherwise report quiescence with retries still pending. *)

  val requests : t -> request list
  (** Every launched request in arrival order — raw material for the
      exactly-once and namespace oracles. *)

  val latency : t -> Metrics.Histogram.t
  (** Arrival-to-commit latency of committed requests (the client view:
      backoff and retries included). *)

  type stats = {
    offered : int;  (** requests launched *)
    resolved : int;
    committed : int;
    aborted : int;
    gave_up : int;
    busy_replies : int;  (** BUSY replies received across all attempts *)
    attempt_timeouts : int;
    attempts : int;  (** submissions incl. retries *)
    goodput_per_s : float;  (** committed / arrival window *)
    retry_amplification : float;  (** attempts / offered *)
  }

  val stats : t -> stats
end
