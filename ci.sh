#!/bin/sh
# Tier-1 gate: everything a PR must keep green, in one command.
#
#   ./ci.sh
#
# 1. full build + test suite (unit, property, golden, crash sweeps);
# 2. bounded chaos smoke: 30 seeds x 5 protocols of randomized
#    fault-schedule campaigns (~150 runs, a few seconds);
# 3. scale-campaign smoke: emits BENCH_scale.json so the machine-readable
#    baseline stays exercised end to end;
# 4. breakdown smoke: one small span-recorded run per protocol (all
#    five, L1PC included); the bench exits nonzero unless the measured
#    critical-path force and message counts equal
#    Acp.Cost_model.paper_table1 — plus a negative control that corrupts
#    the expected L1PC row and demands the gate trip;
# 5. timeline smoke: crash-and-recover run with the sampler + journal
#    on; exits nonzero if no unavailability window closes or the MTTR
#    window start drifts from the injected crash instant;
# 6. profile smoke: one host-profiled scale point per protocol; the
#    bench exits nonzero unless every profile has buckets and telescopes
#    exactly (buckets + residual == total CPU), and both BENCH_profile.json
#    and the speedscope files re-parse through its own JSON reader;
# 7. perf-regression gate: re-measures the heaviest 1PC point from the
#    BENCH_scale.json written in step 3 (same machine, same run) and
#    fails if events/s drops more than 15%; a tighter 5% pass first
#    checks the profiler-disabled dispatch path against the same-run
#    baseline; then proves the gate can fail (and names the
#    worst-regressing subsystem) by checking against a synthetically
#    inflated baseline;
# 8. overload smoke: open-loop retry storms for every protocol
#    through the admission-controlled ingress — the in-bench
#    graceful-degradation gate must pass with admission control on,
#    provably fail with it off (--unbounded), and the overload chaos
#    campaign (reference/storm pairs with fault schedules, >= 30 runs)
#    must satisfy every oracle;
# 9. recovery-drill gate: crash-and-recover campaigns per protocol,
#    MTTR decomposed into detect/fence/scan/resolve and the percentiles
#    checked against the committed per-protocol recovery SLOs (L1PC
#    fence p99 must be exactly 0) — plus a negative control with
#    impossible budgets that must trip;
# 10. autopsy smoke: force an oracle failure (unmeetable settle
#    deadline) through bin/chaos --autopsy, demand a complete incident
#    bundle (manifest, ring tail, journal, trace slice, MTTR, repro
#    line) — the runner re-parses the bundle through its own reader
#    before exiting, so a bundle that does not validate exits nonzero;
# 11. coverage gate: the full protocol-coverage observatory — chaos
#    campaign + directed supplements + deterministic probes merged into
#    one per-protocol transition bitmap; fails unless all five
#    protocols cover >= 90% of their declared edge maps, every run
#    conserves messages exactly (sent = delivered + dup + dropped +
#    in-flight) and every probe settles — plus a negative control with
#    floors inflated past 100% that must trip and name never-hit edges.
set -eu

cd "$(dirname "$0")"

echo "== dune build && dune runtest =="
dune build
dune runtest

echo "== chaos smoke: 30 seeds x 5 protocols =="
dune exec bin/chaos.exe -- --seeds 30 --first-seed 1

echo "== bench scale --smoke (writes BENCH_scale.json) =="
dune exec bench/main.exe -- scale --smoke

echo "== bench breakdown --smoke (cross-checks Table I critical path) =="
dune exec bench/main.exe -- breakdown --smoke

echo "== bench breakdown negative test (wrong L1PC row must fail) =="
# A deliberately corrupted expected row for L1PC must trip the
# cross-check: nonzero exit and a named mismatch. Proves the gate
# compares instead of rubber-stamping.
if dune exec bench/main.exe -- breakdown --smoke --wrong-l1pc-row \
     --json BENCH_breakdown.negative.json > BENCH_breakdown.negative.out 2>&1; then
  cat BENCH_breakdown.negative.out
  rm -f BENCH_breakdown.negative.json BENCH_breakdown.negative.out
  echo "FAIL: breakdown gate accepted a wrong L1PC cost row" >&2
  exit 1
fi
if ! grep -q "L1PC.*mismatch" BENCH_breakdown.negative.out; then
  cat BENCH_breakdown.negative.out
  rm -f BENCH_breakdown.negative.json BENCH_breakdown.negative.out
  echo "FAIL: tripped breakdown gate named no L1PC mismatch" >&2
  exit 1
fi
rm -f BENCH_breakdown.negative.json BENCH_breakdown.negative.out
echo "breakdown gate trips on a wrong L1PC row as expected"

echo "== bench timeline --smoke (recovery journal + MTTR decomposition) =="
dune exec bench/main.exe -- timeline --smoke

echo "== bench profile --smoke (host CPU/alloc attribution) =="
# The bench self-validates: nonempty buckets per protocol, exact
# telescoping, and both BENCH_profile.json and the speedscope files
# re-parsed through its own strict JSON reader. Any violation exits 1.
dune exec bench/main.exe -- profile --smoke

echo "== bench check at 5% (profiler-disabled path vs same-run baseline) =="
# The scale baseline above timed runs with the profiler off; holding the
# re-measurement within 5% of it pins the disabled dispatch path (one
# flag load + branch per event) to baseline cost.
dune exec bench/main.exe -- check --against BENCH_scale.json --tolerance 0.05

echo "== bench check negative test (inflated baseline must fail) =="
# A baseline claiming an absurd events/s must trip the gate: build one
# from the real file with events_per_s replaced by a value far beyond
# reach. Run this before the real gate so the BENCH_check.json left on
# disk is the passing one. The tripped gate must also attribute the
# "regression" — the baseline's profile section names the subsystem
# whose self-time per event grew most.
awk '{ gsub(/"events_per_cpu_s":[0-9.eE+-]+/, "\"events_per_cpu_s\":999999999"); print }' \
  BENCH_scale.json > BENCH_scale.inflated.json
if dune exec bench/main.exe -- check --against BENCH_scale.inflated.json --tolerance 0.15 \
     > BENCH_check.negative.out 2>&1; then
  cat BENCH_check.negative.out
  rm -f BENCH_scale.inflated.json BENCH_check.negative.out
  echo "FAIL: regression gate accepted an inflated baseline" >&2
  exit 1
fi
cat BENCH_check.negative.out
if ! grep -q "subsystem attribution" BENCH_check.negative.out; then
  rm -f BENCH_scale.inflated.json BENCH_check.negative.out
  echo "FAIL: tripped gate printed no subsystem attribution" >&2
  exit 1
fi
rm -f BENCH_scale.inflated.json BENCH_check.negative.out
echo "regression gate trips and attributes as expected"

echo "== bench check (perf-regression gate vs freshly written baseline) =="
dune exec bench/main.exe -- check --against BENCH_scale.json --tolerance 0.15

echo "== bench overload --smoke (goodput across the knee, gated) =="
# Sweeps offered load past the capacity knee for every protocol and
# exits 1 unless every protocol holds >= 25% of its peak goodput at the
# heaviest offered load with zero oracle violations. The artifact is
# re-parsed through the bench's own strict JSON reader.
dune exec bench/main.exe -- overload --smoke

echo "== bench overload negative test (unbounded admission must fail) =="
# With admission control disabled the open-loop retry storm drives
# goodput toward zero: the graceful-degradation gate must trip.
if dune exec bench/main.exe -- overload --smoke --unbounded \
     --json BENCH_overload.unbounded.json > BENCH_overload.negative.out 2>&1; then
  cat BENCH_overload.negative.out
  rm -f BENCH_overload.unbounded.json BENCH_overload.negative.out
  echo "FAIL: overload gate accepted an unbounded-admission collapse" >&2
  exit 1
fi
if ! grep -q "FAILS graceful degradation" BENCH_overload.negative.out; then
  cat BENCH_overload.negative.out
  rm -f BENCH_overload.unbounded.json BENCH_overload.negative.out
  echo "FAIL: tripped overload gate named no protocol" >&2
  exit 1
fi
rm -f BENCH_overload.unbounded.json BENCH_overload.negative.out
echo "overload gate trips on unbounded admission as expected"

echo "== overload chaos campaign: 8 seeds x 5 protocols (retry storms + faults) =="
dune exec bin/chaos.exe -- --overload --seeds 8 --first-seed 1

echo "== bench drill --smoke (MTTR percentiles vs committed recovery SLOs) =="
# Crash-and-recover campaigns; the bench exits 1 unless every segment
# percentile meets the protocol's committed budget — including L1PC's
# structural claim that logless recovery never fences (fence p99 == 0).
dune exec bench/main.exe -- drill --smoke

echo "== bench drill negative test (impossible SLO must fail) =="
# Zeroed budgets are unmeetable by construction: the gate must trip,
# exit nonzero and name the SLO it failed. Proves the drill gate
# compares instead of rubber-stamping.
if dune exec bench/main.exe -- drill --smoke --impossible-slo \
     --json BENCH_drill.negative.json > BENCH_drill.negative.out 2>&1; then
  cat BENCH_drill.negative.out
  rm -f BENCH_drill.negative.json BENCH_drill.negative.out
  echo "FAIL: drill gate accepted impossible recovery SLOs" >&2
  exit 1
fi
if ! grep -q "FAILS recovery SLO" BENCH_drill.negative.out; then
  cat BENCH_drill.negative.out
  rm -f BENCH_drill.negative.json BENCH_drill.negative.out
  echo "FAIL: tripped drill gate named no recovery SLO" >&2
  exit 1
fi
rm -f BENCH_drill.negative.json BENCH_drill.negative.out
echo "drill gate trips on impossible SLOs as expected"

echo "== autopsy smoke: forced failure must produce a valid incident bundle =="
# An unmeetable settle deadline fails the liveness oracle on a healthy
# run; --autopsy must then shrink it, replay it fully observed and
# write an incident bundle that its own reader re-parses (the runner
# exits nonzero on a bundle that fails validation). The repro line is
# printed verbatim for every failed seed.
rm -rf AUTOPSY_smoke
if dune exec bin/chaos.exe -- -p 1pc --seeds 1 --first-seed 1 \
     --settle-deadline 1 --autopsy AUTOPSY_smoke > AUTOPSY_smoke.out 2>&1; then
  cat AUTOPSY_smoke.out
  rm -rf AUTOPSY_smoke AUTOPSY_smoke.out
  echo "FAIL: chaos run with an unmeetable settle deadline passed" >&2
  exit 1
fi
if ! grep -q "incident bundle: AUTOPSY_smoke/INCIDENT_1PC_1" AUTOPSY_smoke.out; then
  cat AUTOPSY_smoke.out
  rm -rf AUTOPSY_smoke AUTOPSY_smoke.out
  echo "FAIL: failed chaos run produced no incident bundle" >&2
  exit 1
fi
if ! grep -q "^repro: " AUTOPSY_smoke.out; then
  cat AUTOPSY_smoke.out
  rm -rf AUTOPSY_smoke AUTOPSY_smoke.out
  echo "FAIL: failed chaos run printed no repro command" >&2
  exit 1
fi
for f in incident.json ring.jsonl journal.jsonl trace.json mttr.json; do
  if [ ! -s "AUTOPSY_smoke/INCIDENT_1PC_1/$f" ]; then
    rm -rf AUTOPSY_smoke AUTOPSY_smoke.out
    echo "FAIL: incident bundle is missing $f" >&2
    exit 1
  fi
done
rm -rf AUTOPSY_smoke AUTOPSY_smoke.out
echo "autopsy bundle written, self-validated and complete"

echo "== bench coverage negative test (inflated floors must fail) =="
# Floors pushed past 100% are unmeetable by construction: the gate must
# exit nonzero and name at least one never-hit edge per protocol.
# Proves the gate compares instead of rubber-stamping. Run before the
# real gate so the BENCH_coverage.json left on disk is the passing one.
if dune exec bench/main.exe -- coverage --smoke --inflated-floors \
     --json BENCH_coverage.negative.json > BENCH_coverage.negative.out 2>&1; then
  cat BENCH_coverage.negative.out
  rm -f BENCH_coverage.negative.json BENCH_coverage.negative.out
  echo "FAIL: coverage gate accepted inflated floors" >&2
  exit 1
fi
if ! grep -q "FLOOR MISS .*never hit:" BENCH_coverage.negative.out; then
  cat BENCH_coverage.negative.out
  rm -f BENCH_coverage.negative.json BENCH_coverage.negative.out
  echo "FAIL: tripped coverage gate named no never-hit edge" >&2
  exit 1
fi
rm -f BENCH_coverage.negative.json BENCH_coverage.negative.out
echo "coverage gate trips on inflated floors and names never-hit edges"

echo "== bench coverage (transition-map floors + conservation ledger) =="
# The full observatory: standard chaos campaign, directed supplements
# and the four deterministic probes merged into one per-protocol edge
# bitmap. Exits 1 unless every protocol covers >= 90% of its declared
# transition map, message conservation holds exactly on every run, and
# every probe settles with a balanced ledger.
dune exec bench/main.exe -- coverage

echo "CI OK"
