#!/bin/sh
# Tier-1 gate: everything a PR must keep green, in one command.
#
#   ./ci.sh
#
# 1. full build + test suite (unit, property, golden, crash sweeps);
# 2. bounded chaos smoke: 30 seeds x 4 protocols of randomized
#    fault-schedule campaigns (~120 runs, a few seconds);
# 3. scale-campaign smoke: emits BENCH_scale.json so the machine-readable
#    baseline stays exercised end to end;
# 4. breakdown smoke: one small span-recorded run per protocol; the
#    bench exits nonzero unless the measured critical-path force and
#    message counts equal Acp.Cost_model.paper_table1;
# 5. timeline smoke: crash-and-recover run with the sampler + journal
#    on; exits nonzero if no unavailability window closes or the MTTR
#    window start drifts from the injected crash instant;
# 6. perf-regression gate: re-measures the heaviest 1PC point from the
#    BENCH_scale.json written in step 3 (same machine, same run) and
#    fails if events/s drops more than 15%; then proves the gate can
#    fail by checking against a synthetically inflated baseline.
set -eu

cd "$(dirname "$0")"

echo "== dune build && dune runtest =="
dune build
dune runtest

echo "== chaos smoke: 30 seeds x 4 protocols =="
dune exec bin/chaos.exe -- --seeds 30 --first-seed 1

echo "== bench scale --smoke (writes BENCH_scale.json) =="
dune exec bench/main.exe -- scale --smoke

echo "== bench breakdown --smoke (cross-checks Table I critical path) =="
dune exec bench/main.exe -- breakdown --smoke

echo "== bench timeline --smoke (recovery journal + MTTR decomposition) =="
dune exec bench/main.exe -- timeline --smoke

echo "== bench check negative test (inflated baseline must fail) =="
# A baseline claiming an absurd events/s must trip the gate: build one
# from the real file with events_per_s replaced by a value far beyond
# reach. Run this before the real gate so the BENCH_check.json left on
# disk is the passing one.
awk '{ gsub(/"events_per_cpu_s":[0-9.eE+-]+/, "\"events_per_cpu_s\":999999999"); print }' \
  BENCH_scale.json > BENCH_scale.inflated.json
if dune exec bench/main.exe -- check --against BENCH_scale.inflated.json --tolerance 0.15; then
  rm -f BENCH_scale.inflated.json
  echo "FAIL: regression gate accepted an inflated baseline" >&2
  exit 1
fi
rm -f BENCH_scale.inflated.json
echo "regression gate trips as expected"

echo "== bench check (perf-regression gate vs freshly written baseline) =="
dune exec bench/main.exe -- check --against BENCH_scale.json --tolerance 0.15

echo "CI OK"
