#!/bin/sh
# Tier-1 gate: everything a PR must keep green, in one command.
#
#   ./ci.sh
#
# 1. full build + test suite (unit, property, golden, crash sweeps);
# 2. bounded chaos smoke: 30 seeds x 4 protocols of randomized
#    fault-schedule campaigns (~120 runs, a few seconds);
# 3. scale-campaign smoke: emits BENCH_scale.json so the machine-readable
#    baseline stays exercised end to end;
# 4. breakdown smoke: one small span-recorded run per protocol; the
#    bench exits nonzero unless the measured critical-path force and
#    message counts equal Acp.Cost_model.paper_table1.
set -eu

cd "$(dirname "$0")"

echo "== dune build && dune runtest =="
dune build
dune runtest

echo "== chaos smoke: 30 seeds x 4 protocols =="
dune exec bin/chaos.exe -- --seeds 30 --first-seed 1

echo "== bench scale --smoke (writes BENCH_scale.json) =="
dune exec bench/main.exe -- scale --smoke

echo "== bench breakdown --smoke (cross-checks Table I critical path) =="
dune exec bench/main.exe -- breakdown --smoke

echo "CI OK"
