(* opc_sim — command-line driver for the One Phase Commit simulator.

   Subcommands:
     fig6      reproduce the paper's Figure 6
     table1    reproduce the paper's Table I (analytic + measured)
     sweep     ablation sweeps (disk | net | conc | colo | batch | dirs)
     run       run a custom workload and print the metrics
     replay    replay a namespace-operation trace file
     trace     print a protocol timeline for one distributed CREATE
     faults    crash-point consistency matrix *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let protocol_conv =
  let parse s =
    match Opc.Acp.Protocol.of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown protocol %S (expected prn, prc, ep, 1pc or l1pc)" s))
  in
  Arg.conv (parse, Opc.Acp.Protocol.pp)

let protocol_arg =
  let doc = "Protocol: prn (2pc), prc, ep, 1pc or l1pc." in
  Arg.(value & opt protocol_conv Opc.Acp.Protocol.Opc & info [ "p"; "protocol" ] ~doc)

let count_arg default =
  let doc = "Number of operations." in
  Arg.(value & opt int default & info [ "n"; "count" ] ~doc)

let seed_arg =
  let doc = "Random seed (runs are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let servers_arg =
  let doc = "Metadata servers in the cluster." in
  Arg.(value & opt int 4 & info [ "servers" ] ~doc)

(* ------------------------------------------------------------------ *)
(* fig6                                                                *)
(* ------------------------------------------------------------------ *)

let fig6 count =
  let t =
    Opc.Metrics.Table.create
      ~columns:
        [ "protocol"; "paper [ops/s]"; "measured [ops/s]"; "mean latency" ]
  in
  List.iter
    (fun protocol ->
      let p = Opc.Experiment.run_fig6_point ~count protocol in
      Opc.Metrics.Table.add_row t
        [
          Opc.Acp.Protocol.name protocol;
          Fmt.str "%.2f" (Opc.Experiment.paper_fig6 protocol);
          Fmt.str "%.2f" p.Opc.Experiment.throughput;
          Fmt.str "%a" Opc.Simkit.Time.pp_span p.Opc.Experiment.mean_latency;
        ])
    Opc.Acp.Protocol.all;
  Opc.Metrics.Table.print t

let fig6_cmd =
  Cmd.v
    (Cmd.info "fig6" ~doc:"Reproduce Figure 6 (ops/s per protocol).")
    Term.(const fig6 $ count_arg 100)

(* ------------------------------------------------------------------ *)
(* table1                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  Opc.Metrics.Table.print (Opc.Acp.Cost_model.table ());
  Fmt.pr "@.Instrumented totals per transaction (must match the analytic \
          columns):@.";
  let t =
    Opc.Metrics.Table.create
      ~columns:[ "protocol"; "sync/txn"; "async/txn"; "ACP msgs/txn" ]
  in
  List.iter
    (fun kind ->
      let m = Opc.Experiment.run_table1_measured kind in
      Opc.Metrics.Table.add_row t
        [
          Opc.Acp.Protocol.name kind;
          Fmt.str "%.2f" m.Opc.Experiment.sync_writes_per_txn;
          Fmt.str "%.2f" m.Opc.Experiment.async_writes_per_txn;
          Fmt.str "%.2f" m.Opc.Experiment.acp_messages_per_txn;
        ])
    Opc.Acp.Protocol.all;
  Opc.Metrics.Table.print t

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table I (analytic and measured).")
    Term.(const table1 $ const ())

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let print_sweep ~x_label points =
  let t =
    Opc.Metrics.Table.create
      ~columns:
        (x_label :: List.map Opc.Acp.Protocol.name Opc.Acp.Protocol.all)
  in
  List.iter
    (fun (p : Opc.Experiment.sweep_point) ->
      Opc.Metrics.Table.add_row t
        (Fmt.str "%g" p.Opc.Experiment.x
        :: List.map
             (fun k -> Fmt.str "%.1f" (List.assoc k p.Opc.Experiment.series))
             Opc.Acp.Protocol.all))
    points;
  Opc.Metrics.Table.print t

let sweep kind count =
  match kind with
  | "disk" ->
      print_sweep ~x_label:"KB/s"
        (Opc.Experiment.sweep_disk_bandwidth ~count ())
  | "net" ->
      print_sweep ~x_label:"latency us"
        (Opc.Experiment.sweep_network_latency ~count ())
  | "conc" -> print_sweep ~x_label:"in flight" (Opc.Experiment.sweep_concurrency ())
  | "colo" ->
      print_sweep ~x_label:"p(colocated)"
        (Opc.Experiment.sweep_colocation ~count ())
  | "batch" ->
      print_sweep ~x_label:"batch" (Opc.Experiment.sweep_batching ~count ())
  | "dirs" ->
      print_sweep ~x_label:"dirs" (Opc.Experiment.sweep_directories ~count ())
  | other ->
      Fmt.epr "unknown sweep %S (disk|net|conc|colo|batch|dirs)@." other

let sweep_cmd =
  let kind =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KIND" ~doc:"disk, net, conc, colo, batch or dirs.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Ablation sweeps of the Figure 6 experiment.")
    Term.(const sweep $ kind $ count_arg 100)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run protocol servers clients ops seed =
  let config =
    {
      Opc.Config.default with
      servers;
      protocol;
      placement = Opc.Mds.Placement.Hash;
      seed;
    }
  in
  let cluster = Opc.Cluster.create config in
  let root = Opc.Cluster.root cluster in
  let dirs =
    Array.init (max 1 (servers / 2)) (fun i ->
        Opc.Cluster.add_directory cluster ~parent:root
          ~name:(Printf.sprintf "dir%d" i) ~server:(i mod servers) ())
  in
  let rng = Opc.Simkit.Rng.create ~seed in
  let wl =
    Opc.Workload.closed_loop cluster ~dirs ~clients ~ops_per_client:ops ~rng
      ()
  in
  (match Opc.Cluster.settle cluster with
  | Opc.Cluster.Quiescent -> ()
  | _ -> failwith "cluster did not settle");
  let stats = Opc.Workload.stats wl in
  Fmt.pr "%a@." Opc.Workload.pp_stats stats;
  Fmt.pr "throughput: %.1f committed ops/s@."
    (Opc.Workload.throughput_per_s stats);
  Opc.Report.print (Opc.Report.collect cluster);
  match Opc.Cluster.check_invariants cluster with
  | [] -> Fmt.pr "invariants: OK@."
  | vs ->
      List.iter
        (fun v -> Fmt.pr "VIOLATION %a@." Opc.Mds.Invariant.pp_violation v)
        vs;
      exit 1

let run_cmd =
  let clients =
    Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Closed-loop clients.")
  in
  let ops =
    Arg.(value & opt int 50 & info [ "ops" ] ~doc:"Operations per client.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a mixed create/delete/rename workload.")
    Term.(const run $ protocol_arg $ servers_arg $ clients $ ops $ seed_arg)

(* ------------------------------------------------------------------ *)
(* replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay protocol servers concurrency file =
  let text =
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Opc.Workload.parse_script text with
  | Error msg ->
      Fmt.epr "%s: %s@." file msg;
      exit 2
  | Ok script ->
      let config =
        {
          Opc.Config.default with
          servers;
          protocol;
          placement = Opc.Mds.Placement.Hash;
        }
      in
      let cluster = Opc.Cluster.create config in
      let wl = Opc.Workload.replay cluster ~concurrency script in
      (match Opc.Cluster.settle cluster with
      | Opc.Cluster.Quiescent -> ()
      | _ -> failwith "replay did not settle");
      Fmt.pr "%a@." Opc.Workload.pp_stats (Opc.Workload.stats wl);
      Opc.Report.print (Opc.Report.collect cluster);
      (match Opc.Cluster.check_invariants cluster with
      | [] -> Fmt.pr "invariants: OK@."
      | vs ->
          List.iter
            (fun v ->
              Fmt.pr "VIOLATION %a@." Opc.Mds.Invariant.pp_violation v)
            vs;
          exit 1)

let replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file (one operation per line).")
  in
  let concurrency =
    Arg.(
      value & opt int 1
      & info [ "concurrency" ] ~doc:"Operations kept in flight.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a namespace-operation trace file.")
    Term.(const replay $ protocol_arg $ servers_arg $ concurrency $ file)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace protocol =
  let config =
    {
      Opc.Config.default with
      servers = 2;
      protocol;
      placement = Opc.Mds.Placement.Spread;
      record_trace = true;
    }
  in
  let cluster = Opc.Cluster.create config in
  let dir =
    Opc.Cluster.add_directory cluster ~parent:(Opc.Cluster.root cluster)
      ~name:"d" ~server:0 ()
  in
  Opc.Cluster.submit cluster
    (Opc.Mds.Op.create_file ~parent:dir ~name:"file1")
    ~on_done:(fun outcome ->
      Fmt.pr "%a   client <- %a@." Opc.Simkit.Time.pp
        (Opc.Cluster.now cluster)
        Opc.Acp.Txn.pp_outcome outcome);
  (match Opc.Cluster.settle cluster with
  | Opc.Cluster.Quiescent -> ()
  | _ -> failwith "did not settle");
  List.iter
    (fun (e : Opc.Simkit.Trace.entry) ->
      match e.kind with
      | "send" | "log.force" | "log.append" | "log.durable" | "txn.commit"
      | "txn.abort" ->
          Fmt.pr "%a   %-6s %-12s %s@." Opc.Simkit.Time.pp e.time e.source
            e.kind e.detail
      | _ -> ())
    (Opc.Simkit.Trace.entries (Opc.Cluster.trace cluster))

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the message/log timeline of one distributed CREATE.")
    Term.(const trace $ protocol_arg)

(* ------------------------------------------------------------------ *)
(* faults                                                              *)
(* ------------------------------------------------------------------ *)

let faults () =
  Fmt.pr
    "Crash-point matrix: one distributed CREATE, a crash injected every \
     2 ms,@.coordinator and worker, all protocols. C = committed, A = \
     aborted;@.every cell also passed the atomicity and invariant \
     checks.@.@.";
  let grid = List.init 31 (fun i -> 2 * i) in
  List.iter
    (fun protocol ->
      List.iter
        (fun server ->
          let cells =
            List.map
              (fun ms ->
                let config =
                  {
                    Opc.Config.default with
                    servers = 2;
                    protocol;
                    placement = Opc.Mds.Placement.Spread;
                    txn_timeout = Opc.Simkit.Time.span_ms 300;
                    heartbeat_interval = Opc.Simkit.Time.span_ms 20;
                    detector_timeout = Opc.Simkit.Time.span_ms 100;
                    restart_delay = Opc.Simkit.Time.span_ms 50;
                  }
                in
                let cluster = Opc.Cluster.create config in
                let dir =
                  Opc.Cluster.add_directory cluster
                    ~parent:(Opc.Cluster.root cluster)
                    ~name:"d" ~server:0 ()
                in
                let outcome = ref None in
                Opc.Cluster.submit cluster
                  (Opc.Mds.Op.create_file ~parent:dir ~name:"f")
                  ~on_done:(fun o -> outcome := Some o);
                Opc.Fault.crash_at cluster ~server
                  ~at:(Opc.Simkit.Time.of_ns (ms * 1_000_000));
                (match Opc.Cluster.settle cluster with
                | Opc.Cluster.Quiescent -> ()
                | _ -> failwith "faults: did not settle");
                (match Opc.Cluster.check_invariants cluster with
                | [] -> ()
                | _ -> failwith "faults: invariant violation");
                match !outcome with
                | Some Opc.Acp.Txn.Committed -> "C"
                | Some (Opc.Acp.Txn.Aborted _) -> "A"
                | None -> failwith "faults: no reply")
              grid
          in
          Fmt.pr "%-4s crash %s  %s@."
            (Opc.Acp.Protocol.name protocol)
            (if server = 0 then "coord " else "worker")
            (String.concat "" cells))
        [ 0; 1 ])
    Opc.Acp.Protocol.all;
  Fmt.pr "@.(time axis: 0ms .. 60ms in 2ms steps)@."

let faults_cmd =
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Crash-point consistency matrix across all protocols.")
    Term.(const faults $ const ())

(* ------------------------------------------------------------------ *)

let main =
  Cmd.group
    (Cmd.info "opc_sim" ~version:"1.0.0"
       ~doc:
         "Simulator for 'One Phase Commit: A Low Overhead Atomic \
          Commitment Protocol for Scalable Metadata Services' (CLUSTER \
          2012).")
    [
      fig6_cmd;
      table1_cmd;
      sweep_cmd;
      run_cmd;
      replay_cmd;
      trace_cmd;
      faults_cmd;
    ]

let () = exit (Cmd.eval main)
