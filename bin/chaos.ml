(* chaos — seeded fault-injection campaigns against the simulated MDS.

   Each run builds a fresh cluster, drives a random namespace workload
   while a seeded fault schedule crashes servers, cuts links and
   degrades the network and disks, then settles and checks the
   atomicity, exactly-once, invariant and liveness oracles.  Runs are
   bit-identically replayable from (protocol, seed), so any failure can
   be shrunk to a minimal schedule with --shrink. *)

open Cmdliner

let protocol_conv =
  let parse s =
    match Opc.Acp.Protocol.of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown protocol %S (expected prn, prc, ep, 1pc or l1pc)" s))
  in
  Arg.conv (parse, Opc.Acp.Protocol.pp)

let protocols_arg =
  let doc = "Protocol to test: prn (2pc), prc, ep, 1pc or l1pc. \
             Repeatable; default is all five."
  in
  Arg.(value & opt_all protocol_conv [] & info [ "p"; "protocol" ] ~doc)

let seeds_arg =
  let doc = "Number of seeds (runs per protocol)." in
  Arg.(value & opt int 50 & info [ "seeds" ] ~doc)

let first_seed_arg =
  let doc = "First seed; runs use first-seed .. first-seed + seeds - 1." in
  Arg.(value & opt int 1 & info [ "first-seed" ] ~doc)

let duration_arg =
  let doc = "Fault-injection window in milliseconds." in
  Arg.(value & opt int Opc.Chaos.Runner.default_spec.window_ms
       & info [ "duration" ] ~doc)

let servers_arg =
  let doc = "Metadata servers in the cluster." in
  Arg.(value & opt int Opc.Chaos.Runner.default_spec.servers
       & info [ "servers" ] ~doc)

let clients_arg =
  let doc = "Closed-loop workload clients." in
  Arg.(value & opt int Opc.Chaos.Runner.default_spec.clients
       & info [ "clients" ] ~doc)

let ops_arg =
  let doc = "Operations per client." in
  Arg.(value & opt int Opc.Chaos.Runner.default_spec.ops_per_client
       & info [ "ops" ] ~doc)

let shrink_arg =
  let doc = "On failure, shrink each counterexample to a locally minimal \
             schedule and print a paste-ready repro fragment."
  in
  Arg.(value & flag & info [ "shrink" ] ~doc)

let autopsy_arg =
  let doc = "On the first failure, shrink it, replay the minimal schedule \
             with every collector enabled and write a self-describing \
             incident bundle (INCIDENT_<protocol>_<seed>/) under $(docv)."
  in
  Arg.(value & opt (some string) None
       & info [ "autopsy" ] ~doc ~docv:"DIR")

let settle_deadline_arg =
  let doc = "Settle deadline in milliseconds (default 120000). Lowering it \
             turns slow convergence into a deterministic liveness failure — \
             CI uses a tiny value to exercise the autopsy path."
  in
  Arg.(value & opt int Opc.Chaos.Runner.default_spec.settle_deadline_ms
       & info [ "settle-deadline" ] ~doc)

let coverage_arg =
  let doc = "Print each run's state-machine edge coverage and wire-tag \
             ledger, then a merged per-protocol summary naming every \
             declared edge the whole campaign never took. Chaos runs \
             always record coverage; this flag only prints it."
  in
  Arg.(value & flag & info [ "coverage" ] ~doc)

let overload_arg =
  let doc = "Run the overload campaign instead of the closed-loop one: \
             each seed pairs a below-knee reference run with an open-loop \
             retry storm (plus fault schedule) through the admission-\
             controlled ingress, checked against the graceful-degradation \
             oracles. --clients and --ops are ignored; --duration sets the \
             fault window."
  in
  Arg.(value & flag & info [ "overload" ] ~doc)

let run_overload protocols seeds first_seed duration servers shrink autopsy =
  let spec =
    {
      Opc.Chaos.Overload.default_spec with
      servers;
      window_ms = duration;
    }
  in
  let campaign =
    Opc.Chaos.Overload.campaign ~protocols ~first_seed ~seeds spec
  in
  Opc.Metrics.Table.print (Opc.Chaos.Overload.table campaign);
  match Opc.Chaos.Overload.failures campaign with
  | [] ->
      Fmt.pr "all %d overload runs passed@." (seeds * List.length protocols);
      0
  | fails ->
      if autopsy <> None then
        Fmt.pr "(autopsy bundles cover closed-loop campaigns; printing \
                repro command lines instead)@.";
      List.iter
        (fun (o : Opc.Chaos.Overload.outcome) ->
          Fmt.pr "@.%a@." Opc.Chaos.Overload.pp_outcome o;
          Fmt.pr "repro: %s@."
            (Opc.Chaos.Overload.repro_command spec ~protocol:o.protocol
               ~seed:o.seed);
          if shrink then
            match Opc.Chaos.Overload.shrink spec o with
            | None -> Fmt.pr "(no fault schedule to shrink)@."
            | Some r ->
                Fmt.pr
                  "shrunk to %d event(s) in %d attempt(s) (%d removed, %d \
                   delayed)@."
                  (Opc.Chaos.Schedule.length r.Opc.Chaos.Shrink.schedule)
                  r.Opc.Chaos.Shrink.attempts r.Opc.Chaos.Shrink.removed
                  r.Opc.Chaos.Shrink.delayed)
        fails;
      1

(* --coverage: one line per run (edges per hosted protocol map, wire
   tags exercised), then a campaign-wide merge that names the edges no
   seed ever took — the same never-hit list `bench coverage` gates on. *)
let print_coverage (campaign : Opc.Chaos.Runner.campaign) protocols =
  List.iter
    (fun (o : Opc.Chaos.Runner.outcome) ->
      let summaries =
        Opc.Chaos.Runner.coverage_summaries ~protocol:o.protocol o.edge_hits
      in
      let tags_seen =
        List.length
          (List.filter
             (fun (ts : Opc.Chaos.Runner.tag_stats) -> ts.sent > 0)
             o.meter)
      in
      Fmt.pr "coverage %a seed %d: %a; %d/%d wire tags@."
        Opc.Acp.Protocol.pp o.protocol o.seed
        Fmt.(
          list ~sep:(any ", ")
            (fun ppf (c : Opc.Obs.Autopsy.coverage_summary) ->
              Fmt.pf ppf "%s %d/%d edges" c.cov_protocol c.edges_hit
                c.declared))
        summaries tags_seen (List.length o.meter))
    campaign.outcomes;
  List.iter
    (fun p ->
      let merged = Array.make Opc.Acp.Edges.count 0 in
      List.iter
        (fun (o : Opc.Chaos.Runner.outcome) ->
          if o.protocol = p && Array.length o.edge_hits > 0 then
            Array.iteri
              (fun i n -> merged.(i) <- merged.(i) + n)
              o.edge_hits)
        campaign.outcomes;
      List.iter
        (fun (c : Opc.Obs.Autopsy.coverage_summary) ->
          Fmt.pr "merged %a: %s %d/%d edges" Opc.Acp.Protocol.pp p
            c.cov_protocol c.edges_hit c.declared;
          if c.never_hit <> [] then begin
            Fmt.pr ", never hit:@.";
            List.iter (fun e -> Fmt.pr "  %s@." e) c.never_hit
          end
          else Fmt.pr "@.")
        (Opc.Chaos.Runner.coverage_summaries ~protocol:p merged))
    protocols

let chaos protocols seeds first_seed duration servers clients ops shrink
    coverage overload autopsy settle_deadline =
  let usage_error msg =
    Fmt.epr "chaos: %s@." msg;
    exit 2
  in
  if servers < 2 then usage_error "--servers must be at least 2";
  if duration < 10 then usage_error "--duration must be at least 10 (ms)";
  if seeds < 0 then usage_error "--seeds must be non-negative";
  if clients < 1 || ops < 1 then
    usage_error "--clients and --ops must be positive";
  if settle_deadline < 1 then
    usage_error "--settle-deadline must be positive (ms)";
  let spec =
    {
      Opc.Chaos.Runner.default_spec with
      servers;
      clients;
      ops_per_client = ops;
      window_ms = duration;
      settle_deadline_ms = settle_deadline;
    }
  in
  let protocols =
    match protocols with [] -> Opc.Acp.Protocol.all | ps -> ps
  in
  if overload then begin
    if coverage then
      Fmt.pr "(--coverage covers closed-loop campaigns; ignored with \
              --overload)@.";
    run_overload protocols seeds first_seed duration servers shrink autopsy
  end
  else
  let campaign = Opc.Chaos.Runner.campaign ~protocols ~first_seed ~seeds spec in
  Opc.Metrics.Table.print (Opc.Chaos.Runner.table campaign);
  if coverage then print_coverage campaign protocols;
  match Opc.Chaos.Runner.failures campaign with
  | [] ->
      Fmt.pr "all %d runs passed@." (seeds * List.length protocols);
      0
  | fails ->
      (* The bundle covers the first failure: one shrink + observed
         replay is cheap; per-failure bundles of a broad sweep are not. *)
      (match (autopsy, fails) with
      | Some dir, o :: _ ->
          let bundle = Opc.Chaos.Runner.autopsy ~dir spec o in
          Fmt.pr "incident bundle: %s@." bundle
      | _ -> ());
      List.iter
        (fun (o : Opc.Chaos.Runner.outcome) ->
          Fmt.pr "@.%a@." Opc.Chaos.Runner.pp_outcome o;
          Fmt.pr "repro: %s@."
            (Opc.Chaos.Runner.repro_command spec ~protocol:o.protocol
               ~seed:o.seed);
          if shrink then begin
            let r = Opc.Chaos.Runner.shrink spec o in
            Fmt.pr
              "shrunk %d -> %d event(s) in %d attempt(s) (%d removed, %d \
               delayed)@."
              (Opc.Chaos.Schedule.length o.schedule)
              (Opc.Chaos.Schedule.length r.Opc.Chaos.Shrink.schedule)
              r.Opc.Chaos.Shrink.attempts r.Opc.Chaos.Shrink.removed
              r.Opc.Chaos.Shrink.delayed;
            Fmt.pr "%s@."
              (Opc.Chaos.Runner.repro_snippet spec ~protocol:o.protocol
                 ~seed:o.seed r.Opc.Chaos.Shrink.schedule)
          end)
        fails;
      1

let main =
  Cmd.v
    (Cmd.info "chaos" ~version:"1.0.0"
       ~doc:
         "Deterministic chaos campaigns: seeded fault schedules, \
          atomicity/liveness oracles and counterexample shrinking.")
    Term.(
      const chaos $ protocols_arg $ seeds_arg $ first_seed_arg $ duration_arg
      $ servers_arg $ clients_arg $ ops_arg $ shrink_arg $ coverage_arg
      $ overload_arg $ autopsy_arg $ settle_deadline_arg)

let () = exit (Cmd.eval' main)
